//! The analytical models of paper §VI-B: computation (Eq. 1), memory
//! (Eq. 2), hardware cost (Eqs. 3/4 via `lutdla-hwmodel`), and parallelism
//! (Eq. 5).

use lutdla_hwmodel::{design_cost, DesignCost, LutDlaHwConfig, Metric};
use lutdla_sim::Gemm;

/// α_sim: elementary ops per element-pair in a distance evaluation
/// (paper: 2 for L2 — one multiply, one add; the L1/Chebyshev datapaths
/// also touch each element twice, with cheaper units).
pub fn alpha_sim(metric: Metric) -> f64 {
    match metric {
        Metric::L2 | Metric::L1 | Metric::Chebyshev => 2.0,
    }
}

/// Eq. (1) — computational cost `τ(v, c)`: similarity ops + accumulations.
///
/// `OP_sim = α_sim · c · M · v · ⌈K/v⌉` (each of the `⌈K/v⌉` subspaces of
/// each of the `M` rows scans `c` centroids over `v` dims) and
/// `OP_add = M · N · ⌈K/v⌉`. Note: the paper's Eq. (1) prints `⌈c/v⌉` in
/// the first term; dimensional analysis and the surrounding text
/// ("computations for similarity comparisons") indicate `⌈K/v⌉`, which we
/// implement.
pub fn tau_ops(g: &Gemm, v: usize, c: usize, metric: Metric) -> f64 {
    let nc = g.k.div_ceil(v) as f64;
    let sim = alpha_sim(metric) * c as f64 * g.m as f64 * v as f64 * nc;
    let add = g.m as f64 * g.n as f64 * nc;
    sim + add
}

/// Dense-GEMM op count the LUT approach must beat (2·M·K·N).
pub fn dense_ops(g: &Gemm) -> f64 {
    2.0 * g.m as f64 * g.k as f64 * g.n as f64
}

/// Eq. (2) — memory footprint `ϕ(v, c)` in bits: LUT + outputs + indices.
pub fn phi_bits(g: &Gemm, v: usize, c: usize, lut_bits: u32, out_bits: u32) -> f64 {
    let nc = g.k.div_ceil(v) as f64;
    let mem_lut = g.n as f64 * c as f64 * nc * lut_bits as f64;
    let mem_out = g.m as f64 * g.n as f64 * out_bits as f64;
    let mem_idx = nc * g.m as f64 * (c as f64).log2().ceil();
    mem_lut + mem_out + mem_idx
}

/// Dense-GEMM memory footprint in bits (weights + outputs), the Eq. (2)
/// comparison point.
pub fn dense_bits(g: &Gemm, weight_bits: u32, out_bits: u32) -> f64 {
    g.k as f64 * g.n as f64 * weight_bits as f64 + g.m as f64 * g.n as f64 * out_bits as f64
}

/// Eq. (5) — pipeline-stage cycle counts and their max `ω`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OmegaBreakdown {
    /// LUT-loading cycles (bandwidth-limited).
    pub load: f64,
    /// Similarity-comparison cycles.
    pub sim: f64,
    /// Table-lookup cycles.
    pub lut: f64,
}

impl OmegaBreakdown {
    /// The pipeline bottleneck `ω = max(load, sim, lut)`.
    pub fn omega(&self) -> f64 {
        self.load.max(self.sim).max(self.lut)
    }

    /// Which stage limits the design.
    pub fn bottleneck(&self) -> Stage {
        if self.lut >= self.load && self.lut >= self.sim {
            Stage::Lookup
        } else if self.sim >= self.load {
            Stage::Similarity
        } else {
            Stage::Load
        }
    }
}

/// The three pipeline stages of Eq. (5)/Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Stage {
    /// DRAM → LUT bank streaming.
    Load,
    /// CCM similarity comparison.
    Similarity,
    /// IMM table lookup.
    Lookup,
}

/// Evaluates Eq. (5) for a GEMM on a configuration.
///
/// `beta_bits_per_cycle` is the memory bandwidth in bits per IMM cycle;
/// `tn` refines the paper's formula with the output-tile width (each IMM
/// retires a `Tn`-wide row per cycle).
// One parameter per symbol of the paper's Eq. (5); bundling them into a
// struct would obscure the 1:1 correspondence the DSE code relies on.
#[allow(clippy::too_many_arguments)]
pub fn omega(
    g: &Gemm,
    v: usize,
    c: usize,
    tn: usize,
    lut_bits: u32,
    beta_bits_per_cycle: f64,
    n_ccu: usize,
    ccm_clock_mult: u32,
    n_imm: usize,
) -> OmegaBreakdown {
    let nc = g.k.div_ceil(v) as f64;
    let no = g.n.div_ceil(tn) as f64;
    // Total LUT bits ÷ bandwidth (every bank loaded exactly once under LS).
    let load = nc * no * (c * tn) as f64 * lut_bits as f64 / beta_bits_per_cycle;
    let sim = g.m as f64 * nc / (n_ccu as f64 * ccm_clock_mult as f64);
    let lut = g.m as f64 * nc * no / n_imm as f64;
    OmegaBreakdown { load, sim, lut }
}

/// Eqs. (3)/(4) — delegated to the hardware model.
pub fn hw_cost(cfg: &LutDlaHwConfig) -> DesignCost {
    design_cost(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Gemm {
        Gemm::new(512, 768, 768)
    }

    #[test]
    fn tau_far_below_dense() {
        // v=4, c=32: the whole point of the approach.
        let t = tau_ops(&g(), 4, 32, Metric::L2);
        assert!(
            t < dense_ops(&g()) / 3.0,
            "tau {t} vs dense {}",
            dense_ops(&g())
        );
    }

    #[test]
    fn tau_grows_with_centroids() {
        assert!(tau_ops(&g(), 4, 64, Metric::L2) > tau_ops(&g(), 4, 8, Metric::L2));
    }

    #[test]
    fn phi_dominated_by_lut_for_large_c() {
        let total = phi_bits(&g(), 4, 32, 8, 16);
        let nc = 192.0;
        let lut = 768.0 * 32.0 * nc * 8.0;
        assert!(lut / total > 0.5);
    }

    #[test]
    fn omega_lookup_bound_then_balanced() {
        // Fig. 10: with 1 IMM the lookup stage dominates; adding IMMs moves
        // the bottleneck.
        let o1 = omega(&g(), 4, 32, 128, 8, 512.0, 1, 2, 1);
        assert_eq!(o1.bottleneck(), Stage::Lookup);
        let o8 = omega(&g(), 4, 32, 128, 8, 512.0, 1, 2, 8);
        assert!(o8.omega() < o1.omega());
    }

    #[test]
    fn omega_load_bound_when_bandwidth_starved() {
        let o = omega(&g(), 4, 32, 128, 8, 1.0, 4, 2, 8);
        assert_eq!(o.bottleneck(), Stage::Load);
    }

    #[test]
    fn more_ccus_shrink_sim_term() {
        let a = omega(&g(), 4, 32, 128, 8, 512.0, 1, 2, 4);
        let b = omega(&g(), 4, 32, 128, 8, 512.0, 4, 2, 4);
        assert!(b.sim < a.sim);
        assert_eq!(b.lut, a.lut);
    }
}
