//! The three evaluated LUT-DLA instances (paper Table VII / §VII-B):
//! Design 1 "Tiny" (NVDLA-Small-class area), Design 2 "Large"
//! (NVDLA-Large-class throughput), Design 3 "Fit" (the co-design engine's
//! BERT-throughput optimum).

use lutdla_hwmodel::{LutDlaHwConfig, Metric, NumFormat, TechNode};
use lutdla_sim::SimConfig;

/// A named design point with its published Table VII parameters.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// Display name.
    pub name: &'static str,
    /// The hardware configuration.
    pub hw: LutDlaHwConfig,
    /// Paper's per-IMM SRAM figure (KB), for cross-checks.
    pub paper_sram_kb: f64,
    /// Paper's minimum-bandwidth figure (GB/s).
    pub paper_bandwidth_gbps: f64,
    /// Paper's area (mm²).
    pub paper_area_mm2: f64,
    /// Paper's power (mW).
    pub paper_power_mw: f64,
    /// Paper's peak performance (GOPS).
    pub paper_perf_gops: f64,
}

impl DesignPoint {
    /// A simulator config at DDR4 bandwidth (paper's end-to-end setting).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::from_hw(&self.hw, 25.6e9)
    }
}

fn base(v: usize, tn: usize, m_rows: usize, n_imm: usize, n_ccu: usize) -> LutDlaHwConfig {
    LutDlaHwConfig {
        metric: Metric::L2,
        v,
        c: 16,
        tn,
        m_rows,
        nc: 16,
        n_ccu,
        n_imm,
        ccm_format: NumFormat::Bf16,
        lut_bits: 8,
        acc_bits: 8,
        freq_mhz: 300.0,
        ccm_clock_mult: 2,
        node: TechNode::N28,
    }
}

/// Design 1 (Tiny): v=3, Nc=16, Tn=128, M=256 — NVDLA-Small-class area.
pub fn design1() -> DesignPoint {
    DesignPoint {
        name: "LUT-DLA Design1 (Tiny)",
        hw: base(3, 128, 256, 2, 1),
        paper_sram_kb: 36.1,
        paper_bandwidth_gbps: 4.1,
        paper_area_mm2: 0.755,
        paper_power_mw: 219.57,
        paper_perf_gops: 460.8,
    }
}

/// Design 2 (Large): v=4, Nc=16, Tn=256, M=256 — NVDLA-Large-class
/// throughput at a fraction of the area.
pub fn design2() -> DesignPoint {
    DesignPoint {
        name: "LUT-DLA Design2 (Large)",
        hw: base(4, 256, 256, 2, 2),
        paper_sram_kb: 72.1,
        paper_bandwidth_gbps: 7.0,
        paper_area_mm2: 1.701,
        paper_power_mw: 314.975,
        paper_perf_gops: 1228.8,
    }
}

/// Design 3 (Fit): v=3, Nc=16, Tn=768, M=512 — the co-design engine's
/// BERT-optimised point.
pub fn design3() -> DesignPoint {
    DesignPoint {
        name: "LUT-DLA Design3 (Fit)",
        hw: base(3, 768, 512, 2, 4),
        paper_sram_kb: 408.2,
        paper_bandwidth_gbps: 8.7,
        paper_area_mm2: 3.64,
        paper_power_mw: 496.4,
        paper_perf_gops: 2764.8,
    }
}

/// All three designs in Table VII order.
pub fn all_designs() -> [DesignPoint; 3] {
    [design1(), design2(), design3()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lutdla_hwmodel::design_cost;

    #[test]
    fn peak_gops_match_paper_exactly() {
        // Peak = 2·v·Tn·nIMM·freq is a definition, so these must be exact.
        for d in all_designs() {
            assert!(
                (d.hw.peak_gops() - d.paper_perf_gops).abs() < 1e-6,
                "{}: {} vs {}",
                d.name,
                d.hw.peak_gops(),
                d.paper_perf_gops
            );
        }
    }

    #[test]
    fn sram_within_15_percent_of_table7() {
        for d in all_designs() {
            let kb = d.hw.imm_config().total_kb();
            let rel = (kb - d.paper_sram_kb).abs() / d.paper_sram_kb;
            assert!(
                rel < 0.15,
                "{}: {kb} KB vs paper {} KB",
                d.name,
                d.paper_sram_kb
            );
        }
    }

    #[test]
    fn bandwidth_within_2x_of_table7() {
        for d in all_designs() {
            let gbps =
                d.hw.imm_config()
                    .min_bandwidth_bytes_per_s(d.hw.freq_mhz * 1e6)
                    / 1e9;
            let ratio = gbps / d.paper_bandwidth_gbps;
            assert!(
                (0.3..3.0).contains(&ratio),
                "{}: {gbps} GB/s vs paper {}",
                d.name,
                d.paper_bandwidth_gbps
            );
        }
    }

    #[test]
    fn modeled_ppa_same_order_as_paper() {
        for d in all_designs() {
            let c = design_cost(&d.hw);
            let area_ratio = c.area_mm2 / d.paper_area_mm2;
            let power_ratio = c.power_mw / d.paper_power_mw;
            assert!(
                (0.2..5.0).contains(&area_ratio),
                "{}: area {} vs paper {}",
                d.name,
                c.area_mm2,
                d.paper_area_mm2
            );
            assert!(
                (0.1..5.0).contains(&power_ratio),
                "{}: power {} vs paper {}",
                d.name,
                c.power_mw,
                d.paper_power_mw
            );
        }
    }

    #[test]
    fn designs_ordered_by_size() {
        let [d1, d2, d3] = all_designs();
        let a = |d: &DesignPoint| design_cost(&d.hw).area_mm2;
        assert!(a(&d1) < a(&d2));
        assert!(a(&d2) < a(&d3));
    }
}
