//! Accuracy oracles for the co-design search (paper §VI-C step 3).
//!
//! The search needs a *fast* accuracy estimate per `(v, c, metric)` point.
//! The paper uses LUTBoost's early-stage training for this; we provide the
//! same hook as a trait, plus a closed-form surrogate fitted to the paper's
//! own sensitivity data (Fig. 8 + Table V), which the benches use so the
//! search runs in milliseconds.

use lutdla_hwmodel::Metric;

/// An oracle estimating model accuracy for a quantization configuration.
pub trait AccuracyModel {
    /// Estimated accuracy (0–100) for `(v, c, metric)`.
    fn estimate(&self, v: usize, c: usize, metric: Metric) -> f64;
}

/// Closed-form surrogate: Table V shows the ResNet-20 accuracy drop is, to
/// a good approximation, inversely proportional to the *equivalent
/// bitwidth* `log₂(c)/v`:
///
/// `drop ≈ κ / (log₂(c)/v) + metric_penalty`
///
/// Fitting κ on the six Table V L2 points gives κ ≈ 1.33 with ≤0.7%
/// residual; L1 sits ≈0.5% below L2 and Chebyshev ≈0.8% below (Table IV /
/// §VII-A).
#[derive(Debug, Clone, Copy)]
pub struct SurrogateAccuracy {
    /// Dense-model accuracy (e.g. 91.73 for ResNet-20/CIFAR-10).
    pub baseline: f64,
    /// Drop coefficient κ.
    pub kappa: f64,
    /// Additional drop for L1.
    pub l1_penalty: f64,
    /// Additional drop for Chebyshev.
    pub chebyshev_penalty: f64,
}

impl SurrogateAccuracy {
    /// The ResNet-20/CIFAR-10 fit used throughout the paper's DSE examples.
    pub fn resnet20_cifar10() -> Self {
        Self {
            baseline: 91.73,
            kappa: 1.33,
            l1_penalty: 0.5,
            chebyshev_penalty: 0.8,
        }
    }
}

impl AccuracyModel for SurrogateAccuracy {
    fn estimate(&self, v: usize, c: usize, metric: Metric) -> f64 {
        let eq_bits = (c as f64).log2().ceil() / v as f64;
        let mut drop = self.kappa / eq_bits.max(1e-9);
        drop += match metric {
            Metric::L2 => 0.0,
            Metric::L1 => self.l1_penalty,
            Metric::Chebyshev => self.chebyshev_penalty,
        };
        (self.baseline - drop).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_matches_table5_l2_points() {
        // Table V (ResNet-20, L2): (v, c, accuracy)
        let points = [
            (9, 8, 87.78),
            (9, 16, 89.45),
            (6, 8, 89.18),
            (6, 16, 90.18),
            (3, 8, 90.48),
            (3, 16, 90.78),
        ];
        let s = SurrogateAccuracy::resnet20_cifar10();
        for (v, c, paper) in points {
            let est = s.estimate(v, c, Metric::L2);
            assert!(
                (est - paper).abs() < 0.8,
                "(v={v}, c={c}): surrogate {est:.2} vs paper {paper}"
            );
        }
    }

    #[test]
    fn shorter_vectors_score_higher() {
        let s = SurrogateAccuracy::resnet20_cifar10();
        assert!(s.estimate(3, 16, Metric::L2) > s.estimate(9, 16, Metric::L2));
    }

    #[test]
    fn more_centroids_score_higher() {
        let s = SurrogateAccuracy::resnet20_cifar10();
        assert!(s.estimate(4, 64, Metric::L2) > s.estimate(4, 8, Metric::L2));
    }

    #[test]
    fn metric_ordering() {
        let s = SurrogateAccuracy::resnet20_cifar10();
        let l2 = s.estimate(4, 16, Metric::L2);
        let l1 = s.estimate(4, 16, Metric::L1);
        let che = s.estimate(4, 16, Metric::Chebyshev);
        assert!(l2 > l1 && l1 > che);
    }

    #[test]
    fn never_negative() {
        let s = SurrogateAccuracy {
            baseline: 1.0,
            ..SurrogateAccuracy::resnet20_cifar10()
        };
        assert_eq!(s.estimate(64, 2, Metric::Chebyshev), 0.0);
    }
}
