//! (v, c) heatmap generation for Fig. 11: each pruning step of the search
//! engine visualised as a 2-D grid, renderable as aligned text or CSV.

use lutdla_hwmodel::Metric;
use lutdla_sim::Gemm;

use crate::accuracy::AccuracyModel;
use crate::model::{phi_bits, tau_ops};
use crate::search::{PruneReason, SearchResult};

/// A labelled 2-D grid over (v, c).
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Row axis: subvector lengths.
    pub vs: Vec<usize>,
    /// Column axis: centroid counts.
    pub cs: Vec<usize>,
    /// `values[vi][ci]`.
    pub values: Vec<Vec<f64>>,
    /// What the values are.
    pub label: String,
}

impl Heatmap {
    /// Builds a grid by evaluating `f(v, c)`.
    pub fn build(
        label: &str,
        vs: &[usize],
        cs: &[usize],
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let values = vs
            .iter()
            .map(|&v| cs.iter().map(|&c| f(v, c)).collect())
            .collect();
        Self {
            vs: vs.to_vec(),
            cs: cs.to_vec(),
            values,
            label: label.to_string(),
        }
    }

    /// Renders as an aligned text table (rows = v, columns = c).
    pub fn render(&self) -> String {
        let mut out = format!("{} (rows: v, cols: c)\n", self.label);
        out.push_str("      ");
        for c in &self.cs {
            out.push_str(&format!("{c:>12}"));
        }
        out.push('\n');
        for (vi, v) in self.vs.iter().enumerate() {
            out.push_str(&format!("v={v:<4}"));
            for ci in 0..self.cs.len() {
                out.push_str(&format!("{:>12.4e}", self.values[vi][ci]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("v\\c");
        for c in &self.cs {
            out.push_str(&format!(",{c}"));
        }
        out.push('\n');
        for (vi, v) in self.vs.iter().enumerate() {
            out.push_str(&v.to_string());
            for ci in 0..self.cs.len() {
                out.push_str(&format!(",{}", self.values[vi][ci]));
            }
            out.push('\n');
        }
        out
    }
}

/// The τ (Eq. 1) grid of Fig. 11(a).
pub fn tau_heatmap(vs: &[usize], cs: &[usize], g: &Gemm, metric: Metric) -> Heatmap {
    Heatmap::build("tau: computational cost (ops)", vs, cs, |v, c| {
        tau_ops(g, v, c, metric)
    })
}

/// The ϕ (Eq. 2) grid of Fig. 11(b).
pub fn phi_heatmap(vs: &[usize], cs: &[usize], g: &Gemm, lut_bits: u32) -> Heatmap {
    Heatmap::build("phi: memory footprint (bits)", vs, cs, |v, c| {
        phi_bits(g, v, c, lut_bits, 16)
    })
}

/// The accuracy grid of Fig. 11(d).
pub fn accuracy_heatmap(
    vs: &[usize],
    cs: &[usize],
    metric: Metric,
    oracle: &dyn AccuracyModel,
) -> Heatmap {
    Heatmap::build("estimated accuracy (%)", vs, cs, |v, c| {
        oracle.estimate(v, c, metric)
    })
}

/// Renders the pruning outcome of a finished search as a character grid
/// (one map per metric): `.` kept, `C`ompute, `M`emory, `H`ardware,
/// `A`ccuracy.
pub fn prune_grid(result: &SearchResult, metric: Metric, vs: &[usize], cs: &[usize]) -> String {
    let mut out = format!("pruning map ({metric})\n      ");
    for c in cs {
        out.push_str(&format!("{c:>4}"));
    }
    out.push('\n');
    for &v in vs {
        out.push_str(&format!("v={v:<4}"));
        for &c in cs {
            let reason = result
                .prune_map
                .iter()
                .find(|(pv, pc, pm, _)| *pv == v && *pc == c && *pm == metric)
                .map(|(_, _, _, r)| *r)
                .unwrap_or(PruneReason::Kept);
            let ch = match reason {
                PruneReason::Kept => '.',
                PruneReason::Compute => 'C',
                PruneReason::Memory => 'M',
                PruneReason::Hardware => 'H',
                PruneReason::Accuracy => 'A',
            };
            out.push_str(&format!("{ch:>4}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::SurrogateAccuracy;

    #[test]
    fn grid_shape() {
        let h = tau_heatmap(&[2, 4], &[8, 16, 32], &Gemm::new(64, 64, 64), Metric::L2);
        assert_eq!(h.values.len(), 2);
        assert_eq!(h.values[0].len(), 3);
    }

    #[test]
    fn tau_monotone_in_c() {
        let h = tau_heatmap(&[4], &[8, 16, 32, 64], &Gemm::new(64, 64, 64), Metric::L2);
        for w in h.values[0].windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn render_contains_axes() {
        let h = accuracy_heatmap(
            &[3, 6],
            &[8, 64],
            Metric::L2,
            &SurrogateAccuracy::resnet20_cifar10(),
        );
        let s = h.render();
        assert!(s.contains("v=3"));
        assert!(s.contains("64"));
        let csv = h.to_csv();
        assert!(csv.starts_with("v\\c,8,64"));
    }
}
