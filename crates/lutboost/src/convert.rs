//! Operator replacement (paper Fig. 6 step ➀): swap the GEMMs of a trained
//! network for LUT operators, preserving the rest of the architecture.

use lutdla_nn::{ParamId, ParamSet};
use lutdla_tensor::Tensor;
use rand::Rng;

use lutdla_models::trainable::{ConvNet, DenseUnit, TransformerClassifier};

use crate::lut_gemm::{LutConfig, LutGemm};

/// How centroids are initialised at conversion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CentroidInit {
    /// K-means over calibration activations (LUTBoost).
    Kmeans,
    /// Random Gaussian (the single-stage / from-scratch baselines).
    Random,
}

/// Which dense units to convert.
#[derive(Debug, Clone, Copy)]
pub struct ConvertPolicy {
    /// Leave the first GEMM (stem conv / first projection) dense. Keeping
    /// the input layer full-precision is the standard LUT-NN practice.
    pub skip_first: bool,
    /// Leave the classifier head dense.
    pub skip_head: bool,
}

impl Default for ConvertPolicy {
    fn default() -> Self {
        Self {
            skip_first: true,
            skip_head: true,
        }
    }
}

/// Handles to the LUT state created by a conversion.
#[derive(Debug, Clone)]
pub struct LutHandles {
    /// Centroid parameters across all converted units (freeze/unfreeze set).
    pub centroid_params: Vec<ParamId>,
    /// Indices into the model's `dense_units` order that were converted.
    pub converted_units: Vec<usize>,
}

impl LutHandles {
    /// Total number of centroid scalars (the paper's "LUT-model parameters").
    pub fn centroid_scalars(&self, ps: &ParamSet) -> usize {
        self.centroid_params
            .iter()
            .map(|&id| ps.value(id).numel())
            .sum()
    }
}

fn convert_units<R: Rng>(
    units: Vec<&mut DenseUnit>,
    calib: &[Tensor],
    ps: &mut ParamSet,
    cfg: LutConfig,
    init: CentroidInit,
    policy: ConvertPolicy,
    rng: &mut R,
) -> LutHandles {
    assert_eq!(
        units.len(),
        calib.len(),
        "calibration capture does not match unit count"
    );
    let last = units.len() - 1;
    let mut handles = LutHandles {
        centroid_params: Vec::new(),
        converted_units: Vec::new(),
    };
    for (i, unit) in units.into_iter().enumerate() {
        if (policy.skip_first && i == 0) || (policy.skip_head && i == last) {
            continue;
        }
        let weight = unit
            .gemm
            .weight_param()
            .expect("unit to convert must expose a dense weight");
        let name = format!("{}.lut", unit.name);
        let lut = match init {
            CentroidInit::Kmeans => {
                LutGemm::from_weight_kmeans(ps, rng, &name, weight, cfg, &calib[i])
            }
            CentroidInit::Random => LutGemm::from_weight_random(ps, rng, &name, weight, cfg),
        };
        handles
            .centroid_params
            .extend_from_slice(lut.centroid_params());
        handles.converted_units.push(i);
        unit.gemm = Box::new(lut);
    }
    handles
}

/// Converts a [`ConvNet`]'s GEMMs to LUT operators.
///
/// `calib_images` is a representative input batch; its per-layer `im2col`
/// matrices seed the k-means initialisation.
pub fn lutify_convnet<R: Rng>(
    net: &mut ConvNet,
    ps: &mut ParamSet,
    cfg: LutConfig,
    init: CentroidInit,
    policy: ConvertPolicy,
    calib_images: Tensor,
    rng: &mut R,
) -> LutHandles {
    let calib = net.capture_gemm_inputs(ps, calib_images);
    convert_units(net.dense_units_mut(), &calib, ps, cfg, init, policy, rng)
}

/// Converts a [`TransformerClassifier`]'s projection/FFN GEMMs to LUT
/// operators.
// Mirrors `lutify_convnet` plus the tokenized-calibration specifics
// (tokens, batch, seq_len); collapsing those into a struct would make the
// two entry points needlessly asymmetric.
#[allow(clippy::too_many_arguments)]
pub fn lutify_transformer<R: Rng>(
    net: &mut TransformerClassifier,
    ps: &mut ParamSet,
    cfg: LutConfig,
    init: CentroidInit,
    policy: ConvertPolicy,
    calib_tokens: &[usize],
    batch: usize,
    seq_len: usize,
    rng: &mut R,
) -> LutHandles {
    let calib = net.capture_gemm_inputs(ps, calib_tokens, batch, seq_len);
    convert_units(net.dense_units_mut(), &calib, ps, cfg, init, policy, rng)
}

/// Downcasts a unit's op to [`LutGemm`] if it was converted.
pub fn as_lut(unit: &DenseUnit) -> Option<&LutGemm> {
    unit.gemm.as_any().downcast_ref::<LutGemm>()
}

/// Mutable variant of [`as_lut`].
pub fn as_lut_mut(unit: &mut DenseUnit) -> Option<&mut LutGemm> {
    unit.gemm.as_any_mut().downcast_mut::<LutGemm>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lutdla_models::trainable::resnet20_mini;
    use lutdla_nn::{Graph, ImageModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conversion_swaps_middle_units_only() {
        let mut rng = StdRng::seed_from_u64(100);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 10);
        let calib = Tensor::randn(&mut rng, &[8, 3, 16, 16], 1.0);
        let handles = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            calib,
            &mut rng,
        );
        let units = net.dense_units();
        assert!(as_lut(units[0]).is_none(), "stem must stay dense");
        assert!(
            as_lut(units[units.len() - 1]).is_none(),
            "head must stay dense"
        );
        assert_eq!(handles.converted_units.len(), units.len() - 2);
        assert!(!handles.centroid_params.is_empty());
    }

    #[test]
    fn converted_net_still_produces_logits() {
        let mut rng = StdRng::seed_from_u64(101);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 10);
        let calib = Tensor::randn(&mut rng, &[8, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            calib.clone(),
            &mut rng,
        );
        let mut g = Graph::new(false);
        let y = net.logits(&mut g, &ps, calib);
        assert_eq!(g.value(y).dims(), &[8, 10]);
        assert!(g.value(y).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn kmeans_conversion_perturbs_outputs_less_than_random() {
        let mut rng = StdRng::seed_from_u64(102);
        let images = Tensor::randn(&mut rng, &[8, 3, 16, 16], 1.0);

        let run = |init: CentroidInit, rng: &mut StdRng| {
            let mut ps = ParamSet::new();
            let mut net = resnet20_mini(&mut ps, 10);
            let mut g = Graph::new(false);
            let node = net.logits(&mut g, &ps, images.clone());
            let before = g.value(node).clone();
            let _ = lutify_convnet(
                &mut net,
                &mut ps,
                LutConfig {
                    c: 32,
                    ..Default::default()
                },
                init,
                ConvertPolicy::default(),
                images.clone(),
                rng,
            );
            let mut g = Graph::new(false);
            let node = net.logits(&mut g, &ps, images.clone());
            let after = g.value(node).clone();
            after.rel_error(&before)
        };
        let km = run(CentroidInit::Kmeans, &mut rng);
        let rnd = run(CentroidInit::Random, &mut rng);
        assert!(km < rnd, "kmeans err {km} not below random err {rnd}");
    }
}
