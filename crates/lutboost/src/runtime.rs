//! `LutRuntime`: the deployment/serving session object (paper §IV's
//! amortization argument turned into an API).
//!
//! LUTBoost's whole premise is that one expensive table build is amortized
//! over many inferences. The original per-layer
//! `prepare_deploy`/`clear_deploy` pattern fought that premise: every
//! deploy call re-exported the quantizer, rebuilt the lookup table, and
//! re-tiled a fresh `LutEngine` — even when nothing had changed — and every
//! `run_batch` spawned its worker threads from scratch. `LutRuntime` makes
//! the deployed model a first-class, long-lived object owning three pieces
//! of reusable state:
//!
//! 1. **An engine cache** keyed on `(ParamSet::uid, weight ParamId, layer
//!    identity, ParamSet::version, LutQuant, FloatPrecision)`.
//!    Re-deploying a layer
//!    whose parameters have not changed — or sweeping deployment precisions
//!    Table-IV style and returning to one already built — reuses the tiled
//!    engine with **zero re-tiling** (observable via [`CacheStats`]).
//!    Bounded capacity with LRU eviction keeps sweeps from hoarding memory.
//! 2. **A persistent worker pool** ([`WorkerPool`], spawned once,
//!    channel-fed) shared by every engine the runtime builds, replacing
//!    per-call thread spawns and keeping a many-layer model from
//!    oversubscribing the machine.
//! 3. **Micro-batched serving sessions** ([`MicroBatcher`] front doors from
//!    [`LutRuntime::session`]) that coalesce single-row `submit` calls into
//!    the batched `run_batch` calls the engine is fast at — window- and
//!    deadline-driven under a [`BatchPolicy`] (a pinned
//!    [`BatchOptions`] window, or an adaptive one that widens under queue
//!    pressure and collapses when idle within a latency SLO) — and always
//!    bit-identical to direct batching.
//!
//! # Example
//!
//! ```no_run
//! use lutdla_lutboost::{DeployConfig, LutRuntime};
//! # fn demo(net: &lutdla_models::trainable::ConvNet, ps: &lutdla_nn::ParamSet) {
//! let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
//! rt.deploy(net.dense_units(), ps); // builds engines (cache misses)
//! // … evaluate, undeploy, train nothing, come back …
//! rt.deploy(net.dense_units(), ps); // pure cache hits: zero re-tiling
//! assert_eq!(rt.stats().hits, rt.stats().misses);
//! # }
//! ```

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use lutdla_models::trainable::{DenseUnit, ServableModel};
use lutdla_nn::{ParamId, ParamSet};
use lutdla_vq::{
    default_workers, share, AdaptiveOptions, BatchOptions, BatchPolicy, EncodeMemo, EngineOptions,
    FloatPrecision, LutEngine, LutQuant, LutTable, MicroBatcher, ServeError, SharedEngine,
    StageStats, WorkerPool,
};

use crate::convert::as_lut;
use crate::deploy::{lut_layers, DecodePlan, DecodeStageCache, DeployConfig, UnitPlan};
use crate::lut_gemm::LutGemm;
use crate::session::{DecodeSession, ModelSession};

/// What uniquely identifies a tiled engine: whose weights (set identity +
/// weight handle), which LUT layer (`centroid0` — the first centroid
/// parameter, unique per `LutGemm` since every instance registers its own
/// centroid tensors, so two layers wrapping the *same* weight with
/// different codebooks/configs never collide), at which parameter version,
/// frozen at which table/datapath precisions. Any parameter mutation bumps
/// the version and changes the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    set_uid: u64,
    weight: ParamId,
    centroid0: ParamId,
    version: u64,
    quant: LutQuant,
    precision: FloatPrecision,
}

struct CacheEntry {
    engine: SharedEngine,
    last_used: u64,
}

/// Engine-cache hit/miss/eviction counters. A deploy whose `misses` did not
/// advance performed zero table re-tiling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Engine requests served from the cache.
    pub hits: u64,
    /// Engine requests that built (exported, tabled, tiled) a new engine.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

/// Construction-time options for [`LutRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// Worker threads in the shared pool (and per-engine dispatch width).
    /// Defaults to [`default_workers`], which honours `LUTDLA_WORKERS`.
    pub workers: usize,
    /// Maximum cached engines before LRU eviction (at least 1).
    pub cache_capacity: usize,
    /// Batch policy for [`LutRuntime::session`] front doors and the
    /// per-stage batchers of [`LutRuntime::model_session`]. A
    /// [`BatchPolicy::Adaptive`] policy gives every batcher built from
    /// these options its own independently adapting window.
    pub policy: BatchPolicy,
    /// Capacity, in rows, of the cross-request [`EncodeMemo`] fronting
    /// every batcher this runtime builds (`0`, the default, disables the
    /// memo). Each front door / pipeline stage gets its **own** memo —
    /// stages serve different codebooks, so sharing one pool would only
    /// mix key spaces. Duplicate rows re-submitted to a stage skip the
    /// similarity walk; the hit/miss/evict counters surface through
    /// [`StageStats`].
    pub memo_rows: usize,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            workers: default_workers(),
            cache_capacity: 16,
            policy: BatchPolicy::default(),
            memo_rows: 0,
        }
    }
}

/// A reusable set of per-stage [`MicroBatcher`]s compiled for one
/// `(model, ParamSet, numerics)` triple — the template that lets several
/// [`ModelSession`]s, or a multi-tenant front door like
/// [`crate::ServeGateway`], drain through the **same** per-stage windows
/// instead of private ones.
///
/// Built by [`LutRuntime::stage_batchers`]; consumed by
/// [`LutRuntime::model_session_shared`], which stamps a live session out of
/// the template (`Arc`-sharing every engine and stage batcher, so two
/// sessions from one template coalesce in the same windows and accumulate
/// into the same [`StageStats`] counters). The template itself never
/// installs deploy state on the model — that happens when a session goes
/// live — so it can outlive any number of session build/drop cycles, and
/// its [`StageBatchers::stage_stats`] keep counting across them.
pub struct StageBatchers {
    set_uid: u64,
    version: u64,
    cfg: DeployConfig,
    /// Widest front-door flush of the policy the template was built from;
    /// sessions stamped from the template inherit it as their auto-flush
    /// threshold.
    front_max_batch: usize,
    plan: Vec<UnitPlan>,
}

impl StageBatchers {
    /// The deployment numerics the template's engines were tiled at.
    pub fn config(&self) -> DeployConfig {
        self.cfg
    }

    /// Number of LUT-served stages in the template.
    pub fn lut_stages(&self) -> usize {
        self.plan.iter().filter(|u| u.is_lut()).count()
    }

    /// Per-stage serving counters, in unit-walk order (LUT stages only —
    /// dense stages have no batcher to observe). These accumulate across
    /// every session stamped from this template, which is what makes a
    /// template-holder's view of load survive session rebuilds.
    pub fn stage_stats(&self) -> Vec<(&str, StageStats)> {
        self.plan
            .iter()
            .filter_map(|u| u.stage_stats().map(|s| (u.name(), s)))
            .collect()
    }
}

impl std::fmt::Debug for StageBatchers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageBatchers")
            .field("cfg", &self.cfg)
            .field("lut_stages", &self.lut_stages())
            .field("front_max_batch", &self.front_max_batch)
            .finish()
    }
}

/// The deployment/serving session object. See the module docs.
pub struct LutRuntime {
    cfg: DeployConfig,
    opts: RuntimeOptions,
    pool: Arc<WorkerPool>,
    cache: HashMap<CacheKey, CacheEntry>,
    /// Logical clock for LRU ordering; advanced on every cache access.
    tick: u64,
    stats: CacheStats,
}

impl LutRuntime {
    /// A runtime with the given default deployment numerics and default
    /// [`RuntimeOptions`].
    pub fn new(cfg: DeployConfig) -> Self {
        Self::with_options(cfg, RuntimeOptions::default())
    }

    /// A runtime with explicit pool/cache/batching options.
    pub fn with_options(cfg: DeployConfig, opts: RuntimeOptions) -> Self {
        let workers = opts.workers.max(1);
        Self {
            cfg,
            opts: RuntimeOptions { workers, ..opts },
            pool: Arc::new(WorkerPool::new(workers)),
            cache: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The default deployment numerics (`deploy`/`session` use these; the
    /// `*_with` variants override per call).
    pub fn config(&self) -> DeployConfig {
        self.cfg
    }

    /// Engine-cache counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of engines currently cached.
    pub fn cached_engines(&self) -> usize {
        self.cache.len()
    }

    /// The worker pool shared by every engine this runtime builds.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Resolves the engine for `lut` at the runtime's default numerics.
    pub fn engine_for(&mut self, lut: &LutGemm, ps: &ParamSet) -> SharedEngine {
        self.engine_with(lut, ps, self.cfg)
    }

    /// Resolves the engine for `lut` at explicit numerics: a cache hit
    /// returns the existing tiled engine (zero rebuild work); a miss
    /// exports the quantizer, precomputes the table, tiles an engine on the
    /// shared pool, and caches it (evicting the least-recently-used entry
    /// at capacity).
    pub fn engine_with(&mut self, lut: &LutGemm, ps: &ParamSet, cfg: DeployConfig) -> SharedEngine {
        let key = CacheKey {
            set_uid: ps.uid(),
            weight: lut.weight(),
            centroid0: lut.centroid_params()[0],
            version: ps.version(),
            quant: cfg.lut_quant,
            precision: cfg.precision,
        };
        self.tick += 1;
        if let Some(entry) = self.cache.get_mut(&key) {
            entry.last_used = self.tick;
            self.stats.hits += 1;
            return Arc::clone(&entry.engine);
        }
        self.stats.misses += 1;
        let (pq, weight) = lut.export(ps);
        let table = LutTable::build(&pq, &weight, cfg.lut_quant);
        let engine = LutEngine::with_opts(
            pq,
            &table,
            EngineOptions {
                precision: cfg.precision,
                workers: self.opts.workers,
                ..EngineOptions::default()
            },
        )
        .with_pool(Arc::clone(&self.pool));
        let engine = share(engine);
        if self.cache.len() >= self.opts.cache_capacity.max(1) {
            let lru = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            if let Some(lru) = lru {
                self.cache.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.cache.insert(
            key,
            CacheEntry {
                engine: Arc::clone(&engine),
                last_used: self.tick,
            },
        );
        engine
    }

    /// Deploys every LUT layer in `layers` at the runtime's default
    /// numerics (cache-aware; see [`LutRuntime::engine_with`]).
    pub fn deploy_layers<'a>(
        &mut self,
        layers: impl IntoIterator<Item = &'a LutGemm>,
        ps: &ParamSet,
    ) {
        self.deploy_layers_with(layers, ps, self.cfg);
    }

    /// Deploys every LUT layer in `layers` at explicit numerics.
    pub fn deploy_layers_with<'a>(
        &mut self,
        layers: impl IntoIterator<Item = &'a LutGemm>,
        ps: &ParamSet,
        cfg: DeployConfig,
    ) {
        for lut in layers {
            let engine = self.engine_with(lut, ps, cfg);
            lut.install_deploy(engine, ps.version());
        }
    }

    /// Deploys every converted layer of a model, given its dense units
    /// (both `ConvNet::dense_units()` and
    /// `TransformerClassifier::dense_units()` feed straight in). One call
    /// site for every architecture — non-LUT units pass through untouched.
    pub fn deploy<'a>(&mut self, units: impl IntoIterator<Item = &'a DenseUnit>, ps: &ParamSet) {
        self.deploy_layers(lut_layers(units), ps);
    }

    /// [`LutRuntime::deploy`] at explicit numerics (precision sweeps).
    pub fn deploy_with<'a>(
        &mut self,
        units: impl IntoIterator<Item = &'a DenseUnit>,
        ps: &ParamSet,
        cfg: DeployConfig,
    ) {
        self.deploy_layers_with(lut_layers(units), ps, cfg);
    }

    /// Starts a [`SessionBuilder`] for whole-model serving: the single
    /// front door that replaced the `model_session*` constructor family.
    ///
    /// ```no_run
    /// # fn demo(rt: &mut lutdla_lutboost::LutRuntime,
    /// #         net: &lutdla_models::trainable::ConvNet, ps: &lutdla_nn::ParamSet) {
    /// let session = rt.serve(net, ps).build_model();            // batch serving
    /// # }
    /// ```
    ///
    /// Chain [`SessionBuilder::config`] / [`SessionBuilder::policy`] /
    /// [`SessionBuilder::shared`] to override the runtime defaults, then
    /// finish with [`SessionBuilder::build_model`] (a batch-coalescing
    /// [`ModelSession`]) or [`SessionBuilder::build_decode`] (a
    /// token-streaming [`DecodeSession`]).
    pub fn serve<'rt, 'm, 't, M: ServableModel>(
        &'rt mut self,
        model: &'m M,
        ps: &'m ParamSet,
    ) -> SessionBuilder<'rt, 'm, 't, M> {
        SessionBuilder {
            cfg: self.cfg,
            policy: self.opts.policy,
            rt: self,
            model,
            ps,
            shared: None,
        }
    }

    /// Starts a [`LayerSessionBuilder`] for single-layer serving: a
    /// micro-batched front door over one layer's engine (see
    /// [`MicroBatcher`]), replacing the `session*` constructor family.
    /// The engine comes from the cache, so a session over an
    /// already-deployed layer shares its tables.
    pub fn serve_layer<'rt, 'l>(
        &'rt mut self,
        lut: &'l LutGemm,
        ps: &'l ParamSet,
    ) -> LayerSessionBuilder<'rt, 'l> {
        LayerSessionBuilder {
            cfg: self.cfg,
            policy: self.opts.policy,
            rt: self,
            lut,
            ps,
        }
    }

    /// Opens a token-streaming [`DecodeSession`] at the runtime's default
    /// numerics — shorthand for `rt.serve(model, ps).build_decode()`.
    /// Fails with [`ServeError::Invalid`] unless the model has an
    /// incremental-forward contract
    /// ([`ServableModel::decode_contract`], e.g. a causal transformer).
    pub fn decode_session<'m, M: ServableModel>(
        &mut self,
        model: &'m M,
        ps: &'m ParamSet,
    ) -> Result<DecodeSession<'m, M>, ServeError> {
        self.serve(model, ps).build_decode()
    }

    /// Deprecated alias for [`LutRuntime::serve_layer`]`.build()`.
    #[deprecated(note = "use `rt.serve_layer(lut, ps).build()`")]
    pub fn session(&mut self, lut: &LutGemm, ps: &ParamSet) -> MicroBatcher {
        self.serve_layer(lut, ps).build()
    }

    /// Deprecated alias for [`LutRuntime::serve_layer`] with explicit
    /// numerics.
    #[deprecated(note = "use `rt.serve_layer(lut, ps).config(cfg).build()`")]
    pub fn session_with(
        &mut self,
        lut: &LutGemm,
        ps: &ParamSet,
        cfg: DeployConfig,
    ) -> MicroBatcher {
        self.serve_layer(lut, ps).config(cfg).build()
    }

    /// Deprecated alias for [`LutRuntime::serve_layer`] with explicit
    /// numerics and batch policy.
    #[deprecated(note = "use `rt.serve_layer(lut, ps).config(cfg).policy(policy).build()`")]
    pub fn session_with_policy(
        &mut self,
        lut: &LutGemm,
        ps: &ParamSet,
        cfg: DeployConfig,
        policy: BatchPolicy,
    ) -> MicroBatcher {
        self.serve_layer(lut, ps).config(cfg).policy(policy).build()
    }

    /// A fresh per-stage encode memo, or `None` when
    /// [`RuntimeOptions::memo_rows`] is zero.
    fn stage_memo(&self) -> Option<Arc<EncodeMemo>> {
        (self.opts.memo_rows > 0).then(|| Arc::new(EncodeMemo::new(self.opts.memo_rows)))
    }

    /// Groups the cached engines by **code identity**: the key fields that
    /// determine the similarity walk's output (parameter-set uid, weight,
    /// layer, version, datapath precision) — everything except the table
    /// quantization. Engines in one group share a codebook, so one packed
    /// stream from [`LutEngine::encode_packed`] drives all of them via
    /// [`LutEngine::run_many_from_packed`]; that is the encode-once seam a
    /// Table-IV-style [`LutQuant`] sweep exploits. Groups — and engines
    /// within a group — come back in least-recently-used-first order;
    /// singleton groups are included.
    pub fn engines_sharing_codes(&self) -> Vec<Vec<SharedEngine>> {
        let mut groups: HashMap<_, Vec<(u64, SharedEngine)>> = HashMap::new();
        for (key, entry) in &self.cache {
            groups
                .entry((
                    key.set_uid,
                    key.weight,
                    key.centroid0,
                    key.version,
                    key.precision,
                ))
                .or_default()
                .push((entry.last_used, Arc::clone(&entry.engine)));
        }
        // `last_used` ticks are unique, so the order is deterministic even
        // though the map walk is not.
        let mut out: Vec<Vec<(u64, SharedEngine)>> = groups.into_values().collect();
        for group in &mut out {
            group.sort_by_key(|(tick, _)| *tick);
        }
        out.sort_by_key(|group| group[0].0);
        out.into_iter()
            .map(|group| group.into_iter().map(|(_, engine)| engine).collect())
            .collect()
    }

    /// Deprecated alias for [`LutRuntime::serve`]`.build_model()`.
    #[deprecated(note = "use `rt.serve(model, ps).build_model()`")]
    pub fn model_session<'m, M: ServableModel>(
        &mut self,
        model: &'m M,
        ps: &'m ParamSet,
    ) -> ModelSession<'m, M> {
        self.serve(model, ps).build_model()
    }

    /// Deprecated alias for [`LutRuntime::serve`] with explicit numerics.
    #[deprecated(note = "use `rt.serve(model, ps).config(cfg).build_model()`")]
    pub fn model_session_with<'m, M: ServableModel>(
        &mut self,
        model: &'m M,
        ps: &'m ParamSet,
        cfg: DeployConfig,
    ) -> ModelSession<'m, M> {
        self.serve(model, ps).config(cfg).build_model()
    }

    /// Deprecated alias for [`LutRuntime::serve`] with explicit numerics
    /// and per-stage batch policy.
    #[deprecated(note = "use `rt.serve(model, ps).config(cfg).policy(policy).build_model()`")]
    pub fn model_session_with_policy<'m, M: ServableModel>(
        &mut self,
        model: &'m M,
        ps: &'m ParamSet,
        cfg: DeployConfig,
        policy: BatchPolicy,
    ) -> ModelSession<'m, M> {
        self.serve(model, ps)
            .config(cfg)
            .policy(policy)
            .build_model()
    }

    /// Compiles a reusable [`StageBatchers`] template for `model`: one
    /// engine (resolved through the cache) plus one drain-only
    /// [`MicroBatcher`] per LUT unit, in unit-walk order. The template does
    /// **not** deploy anything — pass it to
    /// [`LutRuntime::model_session_shared`] to stamp live sessions whose
    /// per-stage batchers are *shared* with every other session from the
    /// same template. This is the opt-in fix for sessions over the same
    /// `(model, ParamSet)` never sharing a window: hold the template, and
    /// every consumer coalesces in it.
    ///
    /// Stage batchers run drain-only regardless of the policy's
    /// `max_delay`/`slo`, for the reason documented on
    /// [`LutRuntime::model_session_with_policy`].
    pub fn stage_batchers<M: ServableModel>(
        &mut self,
        model: &M,
        ps: &ParamSet,
        cfg: DeployConfig,
        policy: BatchPolicy,
    ) -> StageBatchers {
        let stage_policy = match policy.normalized() {
            BatchPolicy::Static(opts) => {
                BatchPolicy::Static(BatchOptions::immediate(opts.max_batch))
            }
            BatchPolicy::Adaptive(opts) => BatchPolicy::Adaptive(AdaptiveOptions {
                slo: std::time::Duration::ZERO,
                ..opts
            }),
        };
        let walk = model.unit_walk();
        let mut plan = Vec::with_capacity(walk.len());
        for unit in walk {
            match as_lut(unit) {
                Some(lut) => {
                    let engine = self.engine_with(lut, ps, cfg);
                    let stage = Arc::new(MicroBatcher::with_policy_memo(
                        Arc::clone(&engine),
                        stage_policy,
                        self.stage_memo(),
                    ));
                    plan.push(UnitPlan::Lut {
                        name: unit.name.clone(),
                        engine,
                        stage,
                    });
                }
                None => plan.push(UnitPlan::Dense {
                    name: unit.name.clone(),
                }),
            }
        }
        StageBatchers {
            set_uid: ps.uid(),
            version: ps.version(),
            cfg,
            front_max_batch: policy.max_batch(),
            plan,
        }
    }

    /// Deprecated alias for [`LutRuntime::serve`]`.shared(batchers).build_model()`.
    #[deprecated(note = "use `rt.serve(model, ps).shared(batchers).build_model()`")]
    pub fn model_session_shared<'m, M: ServableModel>(
        &self,
        model: &'m M,
        ps: &'m ParamSet,
        batchers: &StageBatchers,
    ) -> ModelSession<'m, M> {
        self.stamp_session(model, ps, batchers)
    }

    /// Stamps a live whole-model session out of a [`StageBatchers`]
    /// template: every session stamped from one template drains through
    /// the **same** windows, so concurrent consumers coalesce into shared
    /// engine batches. Going live installs batched deploy state on the
    /// model's LUT layers (and dropping the session removes it), so keep
    /// at most one live session per model — a multi-tenant front door
    /// ([`crate::ServeGateway`]) holds exactly one and routes every tenant
    /// through it.
    ///
    /// # Panics
    ///
    /// If the template was built for a different [`ParamSet`] (identity or
    /// version), different numerics walk, or a model whose unit walk does
    /// not match `model`'s — a stale template would otherwise serve
    /// silently wrong tables.
    fn stamp_session<'m, M: ServableModel>(
        &self,
        model: &'m M,
        ps: &'m ParamSet,
        batchers: &StageBatchers,
    ) -> ModelSession<'m, M> {
        assert_eq!(
            ps.uid(),
            batchers.set_uid,
            "stage-batcher template was built for a different ParamSet"
        );
        assert_eq!(
            ps.version(),
            batchers.version,
            "stage-batcher template is stale: the ParamSet has been mutated since it was built"
        );
        let walk = model.unit_walk();
        assert_eq!(
            walk.len(),
            batchers.plan.len(),
            "stage-batcher template does not match the model's unit walk"
        );
        let mut plan = Vec::with_capacity(walk.len());
        let mut luts = Vec::new();
        for (unit, tmpl) in walk.into_iter().zip(&batchers.plan) {
            assert_eq!(
                unit.name,
                tmpl.name(),
                "stage-batcher template unit order does not match the model"
            );
            match (as_lut(unit), tmpl) {
                (Some(lut), UnitPlan::Lut { engine, stage, .. }) => {
                    lut.install_deploy_batched(
                        Arc::clone(engine),
                        Arc::clone(stage),
                        ps.version(),
                    );
                    plan.push(tmpl.share());
                    luts.push(lut);
                }
                (None, UnitPlan::Dense { .. }) => plan.push(tmpl.share()),
                _ => panic!(
                    "stage-batcher template disagrees with the model about unit `{}` being LUT-served",
                    unit.name
                ),
            }
        }
        ModelSession::new(model, ps, plan, luts, batchers.front_max_batch)
    }

    /// Drops every cached engine (counters are kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

impl std::fmt::Debug for LutRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LutRuntime")
            .field("cfg", &self.cfg)
            .field("workers", &self.opts.workers)
            .field("cached_engines", &self.cache.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Builder for whole-model serving sessions, started by
/// [`LutRuntime::serve`]. Defaults come from the runtime
/// ([`LutRuntime::config`], [`RuntimeOptions::policy`]); every setter
/// overrides one knob, and the two `build_*` terminals pick the session
/// kind:
///
/// * [`SessionBuilder::build_model`] — a batch-coalescing
///   [`ModelSession`] (the former `model_session*` family).
/// * [`SessionBuilder::build_decode`] — a token-streaming
///   [`DecodeSession`] for autoregressive decode.
#[must_use = "a session builder does nothing until `build_model()` or `build_decode()`"]
pub struct SessionBuilder<'rt, 'm, 't, M: ServableModel> {
    rt: &'rt mut LutRuntime,
    model: &'m M,
    ps: &'m ParamSet,
    cfg: DeployConfig,
    policy: BatchPolicy,
    shared: Option<&'t StageBatchers>,
}

impl<'rt, 'm, 't, M: ServableModel> SessionBuilder<'rt, 'm, 't, M> {
    /// Overrides the deployment numerics (defaults to
    /// [`LutRuntime::config`]). Ignored when a [`SessionBuilder::shared`]
    /// template is set — the template carries its own numerics.
    pub fn config(mut self, cfg: DeployConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Overrides the per-stage batch policy (defaults to
    /// [`RuntimeOptions::policy`]). Ignored when a
    /// [`SessionBuilder::shared`] template is set — the template's
    /// batchers were built under their own policy. Decode sessions have
    /// no batchers, so the policy does not apply to
    /// [`SessionBuilder::build_decode`] either.
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Stamps the session from a [`StageBatchers`] template
    /// ([`LutRuntime::stage_batchers`]) instead of building private
    /// per-stage batchers: every session from one template drains through
    /// the **same** windows (see [`crate::StageBatchers`]).
    pub fn shared(mut self, batchers: &'t StageBatchers) -> Self {
        self.shared = Some(batchers);
        self
    }

    /// Builds the batch-coalescing [`ModelSession`]: `submit(input)`
    /// pipelines a single request through every layer of the model —
    /// cached LUT engines (one per-stage [`MicroBatcher`] each) for
    /// converted units, the dense path for everything else — and resolves
    /// a `Pending` handle with the final logits.
    ///
    /// Compiling the session resolves every LUT unit's engine through the
    /// runtime cache ([`LutRuntime::stats`] counts the hits/misses) and
    /// installs batched deploy state on the converted layers; dropping
    /// the session undeploys them, with the engines staying warm in the
    /// cache. Keep at most one live session per model.
    ///
    /// Stage batchers always run in drain-only mode regardless of the
    /// policy's `max_delay`/`slo`: the pipeline blocks on each stage's
    /// result, so a deadline sleep inside a stage could only add serial
    /// latency, never gather more work from the same pipeline. The
    /// deadline/SLO clock belongs to front doors that own their arrival
    /// stream ([`LayerSessionBuilder::policy`]).
    ///
    /// # Panics
    ///
    /// With a [`SessionBuilder::shared`] template that was built for a
    /// different [`ParamSet`] (identity or version) or a model whose unit
    /// walk does not match — a stale template would otherwise serve
    /// silently wrong tables.
    pub fn build_model(self) -> ModelSession<'m, M> {
        match self.shared {
            Some(tmpl) => self.rt.stamp_session(self.model, self.ps, tmpl),
            None => {
                let tmpl = self
                    .rt
                    .stage_batchers(self.model, self.ps, self.cfg, self.policy);
                // `tmpl` drops after stamping, so the per-stage batchers
                // stay private to this one session.
                self.rt.stamp_session(self.model, self.ps, &tmpl)
            }
        }
    }

    /// Builds the token-streaming [`DecodeSession`]: `step(tokens)` grows
    /// the sequence and serves the prefix's logits, with every LUT stage
    /// reusing the prefix's packed codes across steps (see
    /// [`DecodeSession`]).
    ///
    /// Fails with [`ServeError::Invalid`] when the model has no
    /// incremental-forward contract ([`ServableModel::decode_contract`] —
    /// e.g. a bidirectional transformer, whose every row changes each
    /// step) or when a [`SessionBuilder::shared`] template is set (decode
    /// sessions own their per-stage prefix caches; there is no window to
    /// share).
    pub fn build_decode(self) -> Result<DecodeSession<'m, M>, ServeError> {
        if self.shared.is_some() {
            return Err(ServeError::Invalid {
                reason: "decode sessions own their per-stage prefix caches; \
                         a shared stage-batcher template cannot serve them"
                    .to_string(),
            });
        }
        self.model
            .decode_contract()
            .map_err(|reason| ServeError::Invalid { reason })?;
        let walk = self.model.unit_walk();
        let mut plan = Vec::with_capacity(walk.len());
        let mut luts = Vec::new();
        for unit in walk {
            match as_lut(unit) {
                Some(lut) => {
                    let engine = self.rt.engine_with(lut, self.ps, self.cfg);
                    let cache = Rc::new(DecodeStageCache::new(self.rt.stage_memo()));
                    lut.install_deploy_decode(
                        Arc::clone(&engine),
                        Rc::clone(&cache),
                        self.ps.version(),
                    );
                    plan.push(DecodePlan::Lut {
                        name: unit.name.clone(),
                        engine,
                        cache,
                    });
                    luts.push(lut);
                }
                None => plan.push(DecodePlan::Dense {
                    name: unit.name.clone(),
                }),
            }
        }
        Ok(DecodeSession::new(self.model, self.ps, plan, luts))
    }
}

impl<M: ServableModel> std::fmt::Debug for SessionBuilder<'_, '_, '_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("cfg", &self.cfg)
            .field("policy", &self.policy)
            .field("shared", &self.shared.is_some())
            .finish()
    }
}

/// Builder for single-layer serving front doors, started by
/// [`LutRuntime::serve_layer`] (the former `session*` family).
#[must_use = "a layer-session builder does nothing until `build()`"]
pub struct LayerSessionBuilder<'rt, 'l> {
    rt: &'rt mut LutRuntime,
    lut: &'l LutGemm,
    ps: &'l ParamSet,
    cfg: DeployConfig,
    policy: BatchPolicy,
}

impl LayerSessionBuilder<'_, '_> {
    /// Overrides the deployment numerics (defaults to
    /// [`LutRuntime::config`]).
    pub fn config(mut self, cfg: DeployConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Overrides the batch policy (defaults to
    /// [`RuntimeOptions::policy`]) — e.g. [`BatchPolicy::Adaptive`] to
    /// let this front door's window track its own queue pressure.
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builds the micro-batched front door: `submit(row)` calls coalesce
    /// into batched engine runs (see [`MicroBatcher`]), with a fresh
    /// per-door encode memo when [`RuntimeOptions::memo_rows`] is set.
    pub fn build(self) -> MicroBatcher {
        let memo = self.rt.stage_memo();
        MicroBatcher::with_policy_memo(
            self.rt.engine_with(self.lut, self.ps, self.cfg),
            self.policy,
            memo,
        )
    }
}

impl std::fmt::Debug for LayerSessionBuilder<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerSessionBuilder")
            .field("cfg", &self.cfg)
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{lutify_convnet, CentroidInit, ConvertPolicy};
    use crate::deploy::{lut_layers, undeploy_units};
    use crate::lut_gemm::LutConfig;
    use lutdla_models::trainable::resnet20_mini;
    use lutdla_nn::{Graph, ImageModel};
    use lutdla_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_setup() -> (ParamSet, LutGemm, Tensor) {
        let mut rng = StdRng::seed_from_u64(120);
        let mut ps = ParamSet::new();
        let calib = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
        let w = ps.add("w", Tensor::randn(&mut rng, &[8, 4], 0.5));
        let lut =
            LutGemm::from_weight_kmeans(&mut ps, &mut rng, "lut", w, LutConfig::default(), &calib);
        (ps, lut, calib)
    }

    #[test]
    fn redeploy_at_same_version_is_a_pure_cache_hit() {
        let (ps, lut, _) = layer_setup();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy_layers([&lut], &ps);
        assert_eq!(
            rt.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        let first = lut.deployed_engine().expect("deployed");

        // Undeploy and re-deploy with the ParamSet untouched: the engine
        // must come back from the cache — zero table re-tiling.
        lut.clear_deploy();
        rt.deploy_layers([&lut], &ps);
        assert_eq!(
            rt.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        let second = lut.deployed_engine().expect("re-deployed");
        assert!(Arc::ptr_eq(&first, &second), "got a rebuilt engine");
    }

    #[test]
    fn parameter_mutation_bumps_version_and_misses() {
        let (mut ps, lut, _) = layer_setup();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy_layers([&lut], &ps);
        let first = lut.deployed_engine().expect("deployed");

        // Any mutable access bumps ParamSet::version → the cached engine no
        // longer matches and a fresh one must be built.
        ps.value_mut(lut.weight()).fill_mut(0.25);
        rt.deploy_layers([&lut], &ps);
        assert_eq!(rt.stats().misses, 2, "stale engine was served");
        let second = lut.deployed_engine().expect("re-deployed");
        assert!(!Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn precision_sweep_reuses_engines_per_config() {
        let (ps, lut, _) = layer_setup();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        // Table-IV-style sweep: fp32 → bf16+int8 → fp32 → bf16+int8.
        for _ in 0..2 {
            rt.deploy_layers_with([&lut], &ps, DeployConfig::fp32());
            rt.deploy_layers_with([&lut], &ps, DeployConfig::bf16_int8());
        }
        // Two distinct configs built once each; the second round is hits.
        assert_eq!(rt.stats().misses, 2);
        assert_eq!(rt.stats().hits, 2);
        assert_eq!(rt.cached_engines(), 2);
    }

    #[test]
    fn bounded_capacity_evicts_least_recently_used() {
        let (ps, lut, _) = layer_setup();
        let mut rt = LutRuntime::with_options(
            DeployConfig::fp32(),
            RuntimeOptions {
                cache_capacity: 1,
                ..RuntimeOptions::default()
            },
        );
        rt.deploy_layers_with([&lut], &ps, DeployConfig::fp32());
        rt.deploy_layers_with([&lut], &ps, DeployConfig::bf16_int8());
        assert_eq!(rt.cached_engines(), 1, "capacity bound not enforced");
        assert_eq!(rt.stats().evictions, 1);
        // The evicted fp32 engine must be rebuilt on the next request.
        rt.deploy_layers_with([&lut], &ps, DeployConfig::fp32());
        assert_eq!(rt.stats().misses, 3);
    }

    #[test]
    fn lru_eviction_follows_recency_of_use_not_insertion() {
        let (ps, lut, _) = layer_setup();
        let mut rt = LutRuntime::with_options(
            DeployConfig::fp32(),
            RuntimeOptions {
                cache_capacity: 2,
                ..RuntimeOptions::default()
            },
        );
        let fp32 = DeployConfig::fp32();
        let bf16 = DeployConfig::bf16_int8();
        let f16 = DeployConfig {
            lut_quant: LutQuant::F16,
            precision: FloatPrecision::Fp16,
        };
        // Build fp32 then bf16 (cache full), then *touch fp32 again* — the
        // least recently used entry is now bf16, despite fp32 being older.
        let _ = rt.engine_with(&lut, &ps, fp32);
        let _ = rt.engine_with(&lut, &ps, bf16);
        let _ = rt.engine_with(&lut, &ps, fp32);
        assert_eq!(rt.stats().hits, 1);
        // Inserting a third config must evict bf16, not the recently-used
        // fp32.
        let _ = rt.engine_with(&lut, &ps, f16);
        assert_eq!(rt.stats().evictions, 1);
        let misses = rt.stats().misses;
        let _ = rt.engine_with(&lut, &ps, fp32);
        assert_eq!(rt.stats().misses, misses, "fp32 was wrongly evicted");
        let _ = rt.engine_with(&lut, &ps, bf16);
        assert_eq!(
            rt.stats().misses,
            misses + 1,
            "bf16 should have been the victim"
        );
    }

    #[test]
    fn model_session_deploy_undeploy_cycle_reuses_cached_engines() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let images = Tensor::randn(&mut rng, &[4, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            images,
            &mut rng,
        );
        let mut rt = LutRuntime::new(DeployConfig::fp32());

        // First session: every LUT stage is a build (miss), nothing evicts.
        let session = rt.serve(&net, &ps).build_model();
        let lut_stages = session.lut_stages();
        assert!(lut_stages > 0);
        assert_eq!(
            rt.stats(),
            CacheStats {
                hits: 0,
                misses: lut_stages as u64,
                evictions: 0
            }
        );
        drop(session); // undeploys; engines stay cached
        assert_eq!(rt.cached_engines(), lut_stages);

        // Second session at the same parameter version: pure cache hits —
        // the whole model re-deploys with zero re-tiling.
        let session = rt.serve(&net, &ps).build_model();
        assert_eq!(
            rt.stats(),
            CacheStats {
                hits: lut_stages as u64,
                misses: lut_stages as u64,
                evictions: 0
            }
        );
        drop(session);

        // A sweep to a second numerics config doubles the builds; returning
        // to the first is hits again (both configs fit the default cache).
        let session = rt
            .serve(&net, &ps)
            .config(DeployConfig::bf16_int8())
            .build_model();
        drop(session);
        let session = rt.serve(&net, &ps).build_model();
        drop(session);
        assert_eq!(rt.stats().misses, 2 * lut_stages as u64);
        assert_eq!(rt.stats().hits, 2 * lut_stages as u64);
        assert_eq!(rt.stats().evictions, 0);
        assert_eq!(rt.cached_engines(), 2 * lut_stages);

        // A parameter mutation invalidates every cached engine for the new
        // version: the next session rebuilds everything.
        let weight = lut_layers(net.dense_units()).next().expect("lut").weight();
        ps.value_mut(weight).scale_mut(1.0);
        let session = rt.serve(&net, &ps).build_model();
        drop(session);
        assert_eq!(rt.stats().misses, 3 * lut_stages as u64);
    }

    #[test]
    fn two_layers_over_one_weight_never_share_engines() {
        // Ablation shape: two LutGemm instances wrap the same dense weight
        // with different configs/codebooks. Their engines encode against
        // different centroids, so a shared cache entry would serve silently
        // wrong numerics — the key must discriminate by layer.
        let mut rng = StdRng::seed_from_u64(122);
        let mut ps = ParamSet::new();
        let calib = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
        let w = ps.add("w", Tensor::randn(&mut rng, &[8, 4], 0.5));
        let lut_a =
            LutGemm::from_weight_kmeans(&mut ps, &mut rng, "a", w, LutConfig::default(), &calib);
        let lut_b = LutGemm::from_weight_kmeans(
            &mut ps,
            &mut rng,
            "b",
            w,
            LutConfig {
                c: 8,
                ..LutConfig::default()
            },
            &calib,
        );
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy_layers([&lut_a, &lut_b], &ps);
        assert_eq!(rt.stats().misses, 2, "layers collided in the cache");
        let ea = lut_a.deployed_engine().expect("a deployed");
        let eb = lut_b.deployed_engine().expect("b deployed");
        assert!(!Arc::ptr_eq(&ea, &eb), "one engine served both layers");
    }

    #[test]
    fn distinct_param_sets_never_share_engines() {
        let (ps, lut, _) = layer_setup();
        // A clone has identical ids/version but its own uid: engines built
        // for one must not be served for the other (their values diverge
        // silently otherwise).
        let ps2 = ps.clone();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy_layers([&lut], &ps);
        rt.deploy_layers([&lut], &ps2);
        assert_eq!(rt.stats().misses, 2, "cross-ParamSet cache collision");
    }

    #[test]
    fn session_serves_rows_bit_identical_to_the_deployed_engine() {
        let (ps, lut, calib) = layer_setup();
        let x = calib.rows(0, 8);
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy_layers([&lut], &ps);
        let engine = lut.deployed_engine().expect("deployed");
        let reference = lutdla_vq::lock_engine(&engine).run_batch(&x);

        let session = rt.serve_layer(&lut, &ps).build();
        // The session shares the deployed engine through the cache.
        assert_eq!(rt.stats().hits, 1);
        let (m, k) = (x.dims()[0], x.dims()[1]);
        let n = reference.dims()[1];
        let handles: Vec<_> = (0..m)
            .map(|i| session.submit(&x.data()[i * k..(i + 1) * k]).expect("row"))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("session alive");
            assert_eq!(out.as_slice(), &reference.data()[i * n..(i + 1) * n]);
        }
    }

    #[test]
    fn engines_sharing_codes_groups_by_everything_but_quant() {
        let (ps, lut, _) = layer_setup();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        // Two quantizations at the same datapath precision share codes;
        // a third config at a different precision encodes differently.
        let f32_fp32 = DeployConfig::fp32();
        let f16_fp32 = DeployConfig {
            lut_quant: LutQuant::F16,
            precision: FloatPrecision::Fp32,
        };
        let int8_bf16 = DeployConfig::bf16_int8();
        let a = rt.engine_with(&lut, &ps, f32_fp32);
        let b = rt.engine_with(&lut, &ps, f16_fp32);
        let c = rt.engine_with(&lut, &ps, int8_bf16);
        let groups = rt.engines_sharing_codes();
        assert_eq!(groups.len(), 2, "quant-only variants must share a group");
        assert_eq!(groups[0].len(), 2, "fp32-datapath group holds both quants");
        assert!(Arc::ptr_eq(&groups[0][0], &a) && Arc::ptr_eq(&groups[0][1], &b));
        assert_eq!(groups[1].len(), 1);
        assert!(Arc::ptr_eq(&groups[1][0], &c));
    }

    #[test]
    fn memo_enabled_session_is_bit_identical_and_counts_hits() {
        let (ps, lut, calib) = layer_setup();
        let x = calib.rows(0, 6);
        let (m, k) = (x.dims()[0], x.dims()[1]);
        let mut rt = LutRuntime::with_options(
            DeployConfig::fp32(),
            RuntimeOptions {
                memo_rows: 64 * 8,
                ..RuntimeOptions::default()
            },
        );
        let engine = rt.engine_with(&lut, &ps, DeployConfig::fp32());
        let reference = lutdla_vq::lock_engine(&engine).run_batch(&x);
        let n = reference.dims()[1];

        let session = rt.serve_layer(&lut, &ps).build();
        for pass in 0..2 {
            for i in 0..m {
                let out = session
                    .submit(&x.data()[i * k..(i + 1) * k])
                    .expect("row")
                    .wait()
                    .expect("session alive");
                assert_eq!(
                    out.as_slice(),
                    &reference.data()[i * n..(i + 1) * n],
                    "pass {pass} row {i} diverged through the memo"
                );
            }
        }
        let stats = session.stats();
        assert_eq!(stats.memo_misses, m, "first pass populated the memo");
        assert_eq!(stats.memo_hits, m, "second pass re-encoded");
    }

    #[test]
    fn stage_batchers_carry_per_stage_memos_when_enabled() {
        let (ps, net, images) = converted_net(127);
        let mut rt = LutRuntime::with_options(
            DeployConfig::fp32(),
            RuntimeOptions {
                memo_rows: 4096,
                ..RuntimeOptions::default()
            },
        );
        let batchers = rt.stage_batchers(&net, &ps, DeployConfig::fp32(), BatchPolicy::default());
        let image = Tensor::from_vec(images.data()[..3 * 16 * 16].to_vec(), &[3, 16, 16]);
        let serve = |rt: &mut LutRuntime| {
            let session = rt.serve(&net, &ps).shared(&batchers).build_model();
            let handle = session.submit(image.clone()).expect("valid image");
            session.flush();
            handle.wait().expect("session alive")
        };
        let first = serve(&mut rt);
        // Same image again: every stage re-sees its rows, so each stage's
        // memo serves hits — and the logits stay bit-identical.
        let second = serve(&mut rt);
        assert_eq!(first, second, "memo-backed pipeline diverged");
        for (name, stats) in batchers.stage_stats() {
            assert!(
                stats.memo_misses > 0,
                "stage {name}: first pass never touched its memo"
            );
            assert!(
                stats.memo_hits > 0,
                "stage {name}: duplicate image produced no memo hits"
            );
        }
    }

    #[test]
    fn whole_net_deploy_via_dense_units_matches_eval_forward() {
        let mut rng = StdRng::seed_from_u64(121);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let images = Tensor::randn(&mut rng, &[4, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            images.clone(),
            &mut rng,
        );
        let mut g = Graph::new(false);
        let node = net.logits(&mut g, &ps, images.clone());
        let base = g.value(node).clone();

        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy(net.dense_units(), &ps);
        let deployed_layers = rt.stats().misses;
        assert!(deployed_layers > 0, "nothing deployed");
        let mut g = Graph::new(false);
        let node = net.logits(&mut g, &ps, images);
        let deployed = g.value(node).clone();
        undeploy_units(net.dense_units());
        assert!(
            deployed.allclose(&base, 1e-3),
            "rel err {}",
            deployed.rel_error(&base)
        );

        // Re-deploying the whole net at the same version re-tiles nothing.
        rt.deploy(net.dense_units(), &ps);
        assert_eq!(rt.stats().misses, deployed_layers);
        assert_eq!(rt.stats().hits, deployed_layers);
    }

    fn converted_net(seed: u64) -> (ParamSet, lutdla_models::trainable::ConvNet, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let images = Tensor::randn(&mut rng, &[2, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            images.clone(),
            &mut rng,
        );
        (ps, net, images)
    }

    #[test]
    fn shared_stage_batchers_persist_counters_across_session_rebuilds() {
        let (ps, net, images) = converted_net(124);
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let batchers = rt.stage_batchers(&net, &ps, DeployConfig::fp32(), BatchPolicy::default());
        assert!(batchers.lut_stages() > 0);
        // The template alone deploys nothing and built each engine once.
        assert!(lut_layers(net.dense_units()).all(|l| l.deployed_engine().is_none()));
        let after_build = rt.stats();
        assert_eq!(after_build.misses, batchers.lut_stages() as u64);

        let image = Tensor::from_vec(images.data()[..3 * 16 * 16].to_vec(), &[3, 16, 16]);
        let serve = |rt: &mut LutRuntime| {
            let session = rt.serve(&net, &ps).shared(&batchers).build_model();
            let handle = session.submit(image.clone()).expect("valid image");
            session.flush();
            handle.wait().expect("session alive")
        };

        let first = serve(&mut rt);
        let after_one = batchers.stage_stats();
        assert!(after_one.iter().all(|(_, s)| s.batches_run > 0));
        // Session drop undeployed the layers; the template keeps counting.
        assert!(lut_layers(net.dense_units()).all(|l| l.deployed_engine().is_none()));

        let second = serve(&mut rt);
        assert_eq!(first, second, "rebuilt session diverged");
        for ((name, one), (_, two)) in after_one.iter().zip(batchers.stage_stats()) {
            let d = two.delta(one);
            assert!(
                d.batches_run > 0 && d.rows_served > 0,
                "stage {name}: counters reset across the session rebuild"
            );
        }
        // Stamping sessions out of the template touched no cache entries.
        assert_eq!(rt.stats(), after_build);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_stage_batcher_template_is_rejected() {
        let (mut ps, net, _) = converted_net(125);
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let batchers = rt.stage_batchers(&net, &ps, DeployConfig::fp32(), BatchPolicy::default());
        // Any mutation bumps the version: the template's engines are now
        // tiled from dead parameters and must not go live.
        let weight = lut_layers(net.dense_units()).next().expect("lut").weight();
        ps.value_mut(weight).scale_mut(1.0);
        let _ = rt.serve(&net, &ps).shared(&batchers).build_model();
    }

    /// The deprecated `session*`/`model_session*` constructors must stay
    /// thin wrappers over the builder: same engines out of the cache, same
    /// bits out of the forward, until the family is removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_match_the_builder_they_wrap() {
        let (ps, lut, calib) = layer_setup();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let x = calib.rows(0, 4);
        let (m, k) = (x.dims()[0], x.dims()[1]);
        let run_rows = |door: &MicroBatcher| -> Vec<f32> {
            (0..m)
                .flat_map(|i| {
                    door.submit(&x.data()[i * k..(i + 1) * k])
                        .expect("row")
                        .wait()
                        .expect("door alive")
                })
                .collect()
        };
        let via_builder = run_rows(&rt.serve_layer(&lut, &ps).build());
        let via_legacy = run_rows(&rt.session(&lut, &ps));
        assert_eq!(via_builder, via_legacy, "legacy layer door diverged");
        // Both doors resolved the same cached engine: one miss total.
        assert_eq!(rt.stats().misses, 1);
        assert_eq!(rt.stats().hits, 1);

        let (ps, net, images) = converted_net(128);
        let image = Tensor::from_vec(images.data()[..3 * 16 * 16].to_vec(), &[3, 16, 16]);
        let a = {
            let session = rt.serve(&net, &ps).build_model();
            session.run([image.clone()]).expect("valid image")
        };
        let b = {
            let session = rt.model_session(&net, &ps);
            session.run([image]).expect("valid image")
        };
        assert_eq!(a.data(), b.data(), "legacy model session diverged");
        // The deprecated error alias still names the unified type.
        let err: crate::session::SessionError = ServeError::EmptyRun;
        assert_eq!(err, ServeError::EmptyRun);
    }

    /// `build_decode` is gated on the model's incremental-forward
    /// contract, and refuses a shared template (a decode session owns its
    /// prefix caches); a failed build leaves nothing deployed.
    #[test]
    fn build_decode_rejects_models_without_a_contract() {
        let (ps, net, _) = converted_net(129);
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let err = rt
            .serve(&net, &ps)
            .build_decode()
            .expect_err("convnets have no incremental-forward contract");
        assert!(
            matches!(&err, ServeError::Invalid { reason } if reason.contains("incremental")),
            "wrong rejection: {err}"
        );
        let batchers = rt.stage_batchers(&net, &ps, DeployConfig::fp32(), BatchPolicy::default());
        let err = rt
            .serve(&net, &ps)
            .shared(&batchers)
            .build_decode()
            .expect_err("shared templates cannot serve decode");
        assert!(matches!(&err, ServeError::Invalid { reason } if reason.contains("template")));
        assert!(
            lut_layers(net.dense_units()).all(|l| l.deployed_engine().is_none()),
            "failed decode build left deploy state behind"
        );
    }

    #[test]
    #[should_panic(expected = "different ParamSet")]
    fn foreign_stage_batcher_template_is_rejected() {
        let (ps, net, _) = converted_net(126);
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let batchers = rt.stage_batchers(&net, &ps, DeployConfig::fp32(), BatchPolicy::default());
        // A clone shares ids and version but has its own uid — engines
        // built against one set's values must not serve the other.
        let ps2 = ps.clone();
        let _ = rt.serve(&net, &ps2).shared(&batchers).build_model();
    }
}
