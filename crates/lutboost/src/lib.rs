//! LUTBoost: the lightweight multistage converter that turns trained neural
//! networks into LUT-based models (paper §V).
//!
//! The crate provides:
//!
//! * [`LutGemm`] — the lookup-table GEMM operator with straight-through
//!   gradient estimation and the symmetric reconstruction loss;
//! * [`convert`] — operator replacement over the `lutdla-models` trainable
//!   architectures (stage ➀ of Fig. 6);
//! * [`trainer`] — the multistage schedule (stage ➁ centroid calibration,
//!   stage ➂ joint training) plus the single-stage / from-scratch baselines
//!   used in Figs. 7 & 12 and Table II;
//! * [`deploy`] — freezing a converted model into quantized lookup tables
//!   and evaluating it exactly as the IMM hardware executes it (Table IV).
//!
//! # Example: convert a tiny ResNet and deploy at BF16+INT8
//!
//! ```no_run
//! use lutdla_lutboost::{
//!     convert_and_train_images, eval_images_deployed, DeployConfig, LutConfig, Strategy,
//!     ConvertPolicy, TrainSchedule,
//! };
//! use lutdla_models::trainable::resnet20_mini;
//! use lutdla_nn::data::{synthetic_images, ImageTaskConfig};
//! use lutdla_nn::ParamSet;
//!
//! let (train, test) = synthetic_images(&ImageTaskConfig::cifar10_proxy());
//! let mut ps = ParamSet::new();
//! let mut net = resnet20_mini(&mut ps, 10);
//! // … pretrain `net` …
//! let outcome = convert_and_train_images(
//!     &mut net, &mut ps, Strategy::Multistage, LutConfig::default(),
//!     ConvertPolicy::default(), &TrainSchedule::default(), &train, &test, 0,
//! );
//! let acc = eval_images_deployed(&net, &ps, &test, 32, DeployConfig::bf16_int8());
//! println!("LUT model accuracy: {acc} (train-path: {})", outcome.test_accuracy);
//! ```

mod convert;
mod deploy;
mod fold;
mod lut_gemm;
mod trainer;

pub use convert::{
    as_lut, as_lut_mut, lutify_convnet, lutify_transformer, CentroidInit, ConvertPolicy, LutHandles,
};
pub use deploy::{
    deploy_convnet, deploy_transformer, eval_images_deployed, eval_seq_deployed, undeploy_convnet,
    undeploy_transformer, DeployConfig,
};
pub use fold::{fold_bn_into_weight, fold_bn_param, BnParams};
pub use lut_gemm::{LutConfig, LutGemm};
pub use trainer::{
    convert_and_train_images, convert_and_train_seq, fresh_pretrained_convnet,
    fresh_pretrained_transformer, ConversionOutcome, Strategy, TrainSchedule,
};
