//! LUTBoost: the lightweight multistage converter that turns trained neural
//! networks into LUT-based models (paper §V).
//!
//! The crate provides:
//!
//! * [`LutGemm`] — the lookup-table GEMM operator with straight-through
//!   gradient estimation and the symmetric reconstruction loss;
//! * conversion ([`lutify_convnet`] / [`lutify_transformer`]) — operator
//!   replacement over the `lutdla-models` trainable architectures (stage ➀
//!   of Fig. 6);
//! * training ([`convert_and_train_images`] / [`convert_and_train_seq`]) —
//!   the multistage schedule (stage ➁ centroid calibration, stage ➂ joint
//!   training) plus the single-stage / from-scratch baselines used in
//!   Figs. 7 & 12 and Table II;
//! * deployment ([`DeployConfig`], [`eval_images_deployed`] /
//!   [`eval_seq_deployed`]) — deployment numerics and the model-level
//!   deploy/undeploy helpers (Table IV's FP32/BF16+INT8 columns);
//! * [`LutRuntime`] — the deployment/serving session object:
//!   a cached-engine store (keyed on parameter identity/version and the
//!   deployment numerics), a persistent worker pool shared by every engine,
//!   and micro-batched serving sessions that coalesce single-row `submit`
//!   calls into batched engine runs;
//! * [`ModelSession`] — the whole-model serving front door:
//!   `submit(input)` pipelines one request through every layer (cached LUT
//!   engine behind a per-stage micro-batcher for converted units, the
//!   dense eval path otherwise) and resolves a `Pending` handle with the
//!   final logits, bit-identical to the batched `deploy` + eval path;
//! * [`ServeGateway`] — the multi-tenant serving front door: N registered
//!   models behind shared per-stage batchers ([`StageBatchers`]), tenants
//!   with SLO classes ([`SloClass`]) and bounded-queue admission control,
//!   so concurrent tenants of one model coalesce into shared engine
//!   batches while staying bit-identical to solo sessions;
//! * [`DecodeSession`] — token-streaming autoregressive serving
//!   ([`SessionBuilder::build_decode`]): each `step` re-encodes only the
//!   new token's rows, splicing the prefix's packed codes from per-stage
//!   [`DecodeStageCache`]s, bit-identical to a full-sequence re-eval.
//!
//! All serving sessions are built through one front door,
//! [`LutRuntime::serve`] (whole-model) / [`LutRuntime::serve_layer`]
//! (single layer), returning a [`SessionBuilder`] /
//! [`LayerSessionBuilder`]; errors across session, gateway, and decode
//! surfaces share [`ServeError`].
//!
//! # Example: convert a tiny ResNet, deploy at BF16+INT8, serve rows
//!
//! ```no_run
//! use lutdla_lutboost::{
//!     convert_and_train_images, eval_images_deployed, lut_layers, DeployConfig, LutConfig,
//!     LutRuntime, Strategy, ConvertPolicy, TrainSchedule,
//! };
//! use lutdla_models::trainable::resnet20_mini;
//! use lutdla_nn::data::{synthetic_images, ImageTaskConfig};
//! use lutdla_nn::ParamSet;
//!
//! let (train, test) = synthetic_images(&ImageTaskConfig::cifar10_proxy());
//! let mut ps = ParamSet::new();
//! let mut net = resnet20_mini(&mut ps, 10);
//! // … pretrain `net` …
//! let outcome = convert_and_train_images(
//!     &mut net, &mut ps, Strategy::Multistage, LutConfig::default(),
//!     ConvertPolicy::default(), &TrainSchedule::default(), &train, &test, 0,
//! );
//! let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
//! let acc = eval_images_deployed(&mut rt, &net, &ps, &test, 32, DeployConfig::bf16_int8());
//! println!("LUT model accuracy: {acc} (train-path: {})", outcome.test_accuracy);
//!
//! // Serve single rows through a micro-batched session on one LUT layer.
//! let lut = lut_layers(net.dense_units()).next().expect("a converted layer");
//! let session = rt.serve_layer(lut, &ps).build(); // engine comes from the cache
//! let pending = session.submit(&vec![0.0; session.input_dim()]).expect("row");
//! let _row_out = pending.wait().expect("served");
//!
//! // …or serve the WHOLE model: one submit = one end-to-end inference.
//! let serve = rt.serve(&net, &ps).build_model(); // same cache, every layer planned
//! let (image, _label) = test.example(0);
//! let pending = serve.submit(image).expect("image");
//! serve.flush();
//! let _logits = pending.wait().expect("served");
//! ```

mod convert;
mod deploy;
mod fold;
mod gateway;
mod lut_gemm;
mod runtime;
mod session;
mod trainer;

pub use convert::{
    as_lut, as_lut_mut, lutify_convnet, lutify_transformer, CentroidInit, ConvertPolicy, LutHandles,
};
pub use deploy::{
    eval_images_deployed, eval_seq_deployed, lut_layers, undeploy_units, DecodePlan,
    DecodeStageCache, DecodeStageStats, DeployConfig, UnitPlan,
};
pub use fold::{fold_bn_into_weight, fold_bn_param, BnParams};
pub use gateway::{
    ClassPolicy, GatewayOptions, GatewayStats, ModelId, ServeGateway, SloClass, TenantId,
    TenantStats,
};
pub use lut_gemm::{LutConfig, LutGemm};
pub use lutdla_vq::ServeError;
pub use runtime::{
    CacheStats, LayerSessionBuilder, LutRuntime, RuntimeOptions, SessionBuilder, StageBatchers,
};
// The deprecated `SessionError` alias stays exported for downstream
// migrations; `ServeError` is the one error surface going forward.
#[allow(deprecated)]
pub use session::SessionError;
pub use session::{DecodeSession, ModelSession};
pub use trainer::{
    convert_and_train_images, convert_and_train_seq, fresh_pretrained_convnet,
    fresh_pretrained_transformer, ConversionOutcome, Strategy, TrainSchedule,
};
