//! Batch-norm folding (paper §IV-A: "For batch normalization, LUT-DLA
//! could integrate normalization into weights").
//!
//! At inference, `BN(conv(x)) = γ·(W·x − μ)/σ + β` is an affine function of
//! the conv output, so the scale can be folded into the GEMM weight columns
//! and the shift into a bias. After folding, the lookup tables built from
//! the folded weight already produce normalised outputs — the IMM needs no
//! separate normalisation datapath.

use lutdla_nn::ParamSet;
use lutdla_tensor::Tensor;

/// Frozen batch-norm statistics + affine parameters for one channel set.
#[derive(Debug, Clone, PartialEq)]
pub struct BnParams {
    /// Learned scale γ.
    pub gamma: Vec<f32>,
    /// Learned shift β.
    pub beta: Vec<f32>,
    /// Running mean μ.
    pub mean: Vec<f32>,
    /// Running variance σ².
    pub var: Vec<f32>,
    /// Stability epsilon.
    pub eps: f32,
}

impl BnParams {
    /// Per-channel multiplicative factor `γ/√(σ²+ε)`.
    pub fn scale(&self) -> Vec<f32> {
        self.gamma
            .iter()
            .zip(&self.var)
            .map(|(&g, &v)| g / (v + self.eps).sqrt())
            .collect()
    }

    /// Per-channel additive term `β − μ·scale`.
    pub fn shift(&self) -> Vec<f32> {
        let scale = self.scale();
        self.beta
            .iter()
            .zip(&self.mean)
            .zip(&scale)
            .map(|((&b, &m), &s)| b - m * s)
            .collect()
    }
}

/// Folds batch-norm into a GEMM weight `[K, N]` (N = channels), returning
/// the folded weight and the bias to add after the GEMM.
///
/// # Panics
///
/// Panics if the channel counts disagree.
pub fn fold_bn_into_weight(weight: &Tensor, bn: &BnParams) -> (Tensor, Vec<f32>) {
    assert_eq!(weight.shape().rank(), 2, "weight must be [K, N]");
    let n = weight.dims()[1];
    assert_eq!(bn.gamma.len(), n, "channel count mismatch");
    let scale = bn.scale();
    let shift = bn.shift();
    let mut folded = weight.clone();
    for row in folded.data_mut().chunks_exact_mut(n) {
        for (slot, &sc) in row.iter_mut().zip(&scale) {
            *slot *= sc;
        }
    }
    (folded, shift)
}

/// Folds batch-norm into a weight *parameter* in place and returns the bias
/// (convenience over [`fold_bn_into_weight`] for `ParamSet`-resident
/// weights).
pub fn fold_bn_param(ps: &mut ParamSet, weight: lutdla_nn::ParamId, bn: &BnParams) -> Vec<f32> {
    let (folded, shift) = fold_bn_into_weight(ps.value(weight), bn);
    *ps.value_mut(weight) = folded;
    shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bn(rng: &mut StdRng, n: usize) -> BnParams {
        BnParams {
            gamma: (0..n).map(|_| rng.gen_range(0.5f32..1.5)).collect(),
            beta: (0..n).map(|_| rng.gen_range(-0.5f32..0.5)).collect(),
            mean: (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            var: (0..n).map(|_| rng.gen_range(0.25f32..2.0)).collect(),
            eps: 1e-5,
        }
    }

    /// Reference: apply BN explicitly to the GEMM output.
    fn bn_apply(y: &Tensor, bn: &BnParams) -> Tensor {
        let n = y.dims()[1];
        let scale = bn.scale();
        let shift = bn.shift();
        let mut out = y.clone();
        for row in 0..y.dims()[0] {
            for col in 0..n {
                let v = &mut out.data_mut()[row * n + col];
                *v = *v * scale[col] + shift[col];
            }
        }
        out
    }

    #[test]
    fn folded_gemm_equals_bn_after_gemm() {
        let mut rng = StdRng::seed_from_u64(120);
        let x = Tensor::rand_uniform(&mut rng, &[16, 12], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[12, 6], -1.0, 1.0);
        let bn = random_bn(&mut rng, 6);

        let reference = bn_apply(&x.matmul(&w), &bn);

        let (folded, bias) = fold_bn_into_weight(&w, &bn);
        let mut fused = x.matmul(&folded);
        for row in fused.data_mut().chunks_exact_mut(6) {
            for (slot, &b) in row.iter_mut().zip(&bias) {
                *slot += b;
            }
        }
        assert!(
            fused.allclose(&reference, 1e-4),
            "rel err {}",
            fused.rel_error(&reference)
        );
    }

    #[test]
    fn folded_lut_table_produces_normalised_outputs() {
        // Build the LUT from the folded weight: lookup+bias must equal
        // BN(exact GEMM of quantized activations).
        use lutdla_vq::{approx_matmul, Distance, LutQuant, LutTable, ProductQuantizer};
        let mut rng = StdRng::seed_from_u64(121);
        let x = Tensor::rand_uniform(&mut rng, &[32, 8], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[8, 4], -1.0, 1.0);
        let bn = random_bn(&mut rng, 4);
        let pq = ProductQuantizer::fit(&x, 4, 16, Distance::L2, &mut rng);

        let (folded, bias) = fold_bn_into_weight(&w, &bn);
        let lut = LutTable::build(&pq, &folded, LutQuant::F32);
        let mut via_lut = approx_matmul(&x, &pq, &lut);
        for row in via_lut.data_mut().chunks_exact_mut(4) {
            for (slot, &b) in row.iter_mut().zip(&bias) {
                *slot += b;
            }
        }

        let codes = pq.encode(&x);
        let ahat = pq.decode(&codes, 32);
        let reference = bn_apply(&ahat.matmul(&w), &bn);
        assert!(
            via_lut.allclose(&reference, 1e-4),
            "rel err {}",
            via_lut.rel_error(&reference)
        );
    }

    #[test]
    fn fold_param_in_place() {
        let mut rng = StdRng::seed_from_u64(122);
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::rand_uniform(&mut rng, &[4, 3], -1.0, 1.0));
        let before = ps.value(w).clone();
        let bn = random_bn(&mut rng, 3);
        let bias = fold_bn_param(&mut ps, w, &bn);
        assert_eq!(bias.len(), 3);
        assert!(!ps.value(w).allclose(&before, 1e-9), "weight unchanged");
        // Column scaling only: ratios within a column are preserved.
        let after = ps.value(w);
        let r0 = after.at(&[0, 1]) / before.at(&[0, 1]);
        let r1 = after.at(&[3, 1]) / before.at(&[3, 1]);
        assert!((r0 - r1).abs() < 1e-5);
    }

    #[test]
    fn identity_bn_is_noop() {
        let mut rng = StdRng::seed_from_u64(123);
        let w = Tensor::rand_uniform(&mut rng, &[5, 4], -1.0, 1.0);
        let bn = BnParams {
            gamma: vec![1.0; 4],
            beta: vec![0.0; 4],
            mean: vec![0.0; 4],
            var: vec![1.0; 4],
            eps: 0.0,
        };
        let (folded, bias) = fold_bn_into_weight(&w, &bn);
        assert!(folded.allclose(&w, 1e-6));
        assert!(bias.iter().all(|&b| b.abs() < 1e-6));
    }
}
