//! `ServeGateway`: the multi-tenant serving front door.
//!
//! LUT-DLA's throughput hinges on keeping the table-lookup datapath fed
//! with wide batches, but a [`ModelSession`] is a *single-consumer* front
//! door: every caller that builds its own session also builds private
//! per-stage batchers, so two clients of the same model never share a
//! window. The gateway closes that gap — it is the one holder of a
//! [`crate::StageBatchers`] template and the one live session per
//! registered model, and it routes requests from many **tenants** through
//! them, so two tenants hitting the same model coalesce into one engine
//! `run_batch` (the paper's amortize-one-pass-over-many-consumers argument
//! applied across clients instead of across rows).
//!
//! Three serving concerns layer on top of the routing:
//!
//! * **SLO classes** — each tenant registers under a [`SloClass`]
//!   (`Latency`, `Throughput`, `BestEffort`) that maps onto a per-class
//!   [`ClassPolicy`]: how deep its admission queue runs, how many requests
//!   one drain round may take from it ([`BatchPolicy`] vocabulary), and an
//!   optional shed deadline for requests that grew stale in the queue.
//! * **Admission control** — [`ServeGateway::submit`] is shed-or-queue:
//!   a full bounded queue turns the request away with the structured
//!   [`ServeError::Shed`] (nothing enqueued, caller may retry), and
//!   shutdown is graceful — [`ServeGateway::close`] and `Drop` drain every
//!   admitted request before the sessions go away.
//! * **Decode streams** — a tenant serving an autoregressive model
//!   ([`ServableModel::decode_contract`]) can open a [`StreamId`] and feed
//!   it token steps ([`ServeGateway::submit_step`]): the gateway grows the
//!   stream's prefix ([`ServableModel::extend_input`]) and routes each
//!   grown prefix through the same admission/drain machinery as plain
//!   submits — many small correlated requests exercising the tenant's SLO
//!   class, each resolving with that prefix's logits. A shed step leaves
//!   the prefix untouched, so `admitted + shed` still accounts for every
//!   step offered.
//! * **Fairness** — each drain round ([`ServeGateway::pump`]) visits
//!   classes in priority order (`Latency` → `Throughput` → `BestEffort`)
//!   and the tenants within a class round-robin from a rotating start, so
//!   no same-class tenant is structurally first. Per-tenant
//!   [`TenantStats`] and the aggregate [`GatewayStats`] sit over the
//!   per-stage [`StageStats`] the sessions already expose.
//!
//! The gateway is single-thread-driven like the session under it (`!Sync`
//! by construction: interior `Cell`/`RefCell` state): callers submit and
//! pump from one serving thread, and concurrency between tenants means
//! interleaved in-flight requests, not parallel mutation. Results are
//! bit-identical to each tenant running a solo [`ModelSession`], for every
//! `LutQuant × FloatPrecision` combo — coalescing changes batch grouping
//! only, and per-example logits are grouping-independent.
//!
//! # Example
//!
//! ```no_run
//! use lutdla_lutboost::{DeployConfig, GatewayOptions, LutRuntime, ServeGateway, SloClass};
//! # fn demo(net: &lutdla_models::trainable::ConvNet, ps: &lutdla_nn::ParamSet,
//! #         image: lutdla_tensor::Tensor) {
//! let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
//! let mut gw = ServeGateway::new(GatewayOptions::new(DeployConfig::bf16_int8()));
//! let model = gw.register_model(&mut rt, "resnet", net, ps);
//! let web = gw.register_tenant("web", model, SloClass::Latency);
//! let batch = gw.register_tenant("nightly", model, SloClass::BestEffort);
//! let h1 = gw.submit(web, image.clone()).expect("admitted");
//! let h2 = gw.submit(batch, image).expect("admitted");
//! gw.pump(); // both tenants coalesce into one engine batch
//! let (_logits1, _logits2) = (h1.wait(), h2.wait());
//! # }
//! ```

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

use lutdla_models::trainable::ServableModel;
use lutdla_nn::ParamSet;
use lutdla_vq::{BatchOptions, BatchPolicy, Pending, PendingResolver, ServeError, StageStats};

use crate::deploy::DeployConfig;
use crate::runtime::{LutRuntime, StageBatchers};
use crate::session::ModelSession;

/// Handle to a model registered with [`ServeGateway::register_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(usize);

impl ModelId {
    /// The model's registration index (its position in registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a tenant registered with [`ServeGateway::register_tenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a decode stream opened with [`ServeGateway::open_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(usize);

impl StreamId {
    /// The stream's open-order index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A tenant's service-level objective class. Classes are drained in
/// declaration order each [`ServeGateway::pump`]: `Latency` first,
/// `BestEffort` last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Interactive traffic: drained first, generous queue, wide per-round
    /// quota so admitted requests clear in few rounds.
    Latency,
    /// Bulk traffic that cares about rows/s, not tail latency: deepest
    /// queue, widest quota, drained after `Latency`.
    Throughput,
    /// Scavenger traffic: smallest queue (sheds first under overload) and
    /// a tiny per-round quota, drained last.
    BestEffort,
}

impl SloClass {
    /// All classes, in drain-priority order.
    pub const ALL: [SloClass; 3] = [
        SloClass::Latency,
        SloClass::Throughput,
        SloClass::BestEffort,
    ];

    /// Stable snake_case name (the form `BENCH_serve.json` uses).
    pub fn as_str(self) -> &'static str {
        match self {
            SloClass::Latency => "latency",
            SloClass::Throughput => "throughput",
            SloClass::BestEffort => "best_effort",
        }
    }

    /// Position in [`SloClass::ALL`] (drain-priority order) — handy for
    /// per-class accumulator arrays in reporting layers.
    pub fn index(self) -> usize {
        match self {
            SloClass::Latency => 0,
            SloClass::Throughput => 1,
            SloClass::BestEffort => 2,
        }
    }

    /// The class's default admission/drain knobs. The asymmetry is the
    /// point: `BestEffort`'s queue is 4× shallower than `Latency`'s (so it
    /// sheds first when both are offered the same overload) and its
    /// per-round quota 8× narrower (so admitted scavenger work trickles
    /// out behind interactive work instead of riding its batches).
    pub fn default_policy(self) -> ClassPolicy {
        match self {
            SloClass::Latency => ClassPolicy {
                max_queue: 64,
                batch: BatchPolicy::Static(BatchOptions::immediate(16)),
                shed_deadline: None,
            },
            SloClass::Throughput => ClassPolicy {
                max_queue: 256,
                batch: BatchPolicy::Static(BatchOptions::immediate(64)),
                shed_deadline: None,
            },
            SloClass::BestEffort => ClassPolicy {
                max_queue: 16,
                batch: BatchPolicy::Static(BatchOptions::immediate(2)),
                shed_deadline: None,
            },
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-tenant admission/drain knobs, defaulted from the tenant's
/// [`SloClass`] (see [`SloClass::default_policy`]) and overridable per
/// tenant via [`ServeGateway::register_tenant_with`].
#[derive(Debug, Clone, Copy)]
pub struct ClassPolicy {
    /// Bounded admission-queue depth: a submit finding the queue at this
    /// depth is turned away with [`ServeError::Shed`]. Clamped to ≥ 1.
    pub max_queue: usize,
    /// How much one [`ServeGateway::pump`] round may take from this
    /// tenant's queue — the policy's widest flush
    /// ([`BatchPolicy::max_batch`]) is the per-round quota.
    pub batch: BatchPolicy,
    /// If set, a request older than this when a pump reaches it is shed
    /// instead of served (its waiter observes
    /// [`SubmitError::Closed`](lutdla_vq::SubmitError::Closed)
    /// through the dropped handle, and [`TenantStats::expired`] counts
    /// it). `None` (the class defaults) never expires admitted work.
    pub shed_deadline: Option<Duration>,
}

/// Construction-time options for [`ServeGateway`].
#[derive(Debug, Clone, Copy)]
pub struct GatewayOptions {
    /// Deployment numerics every registered model's engines are tiled at.
    pub cfg: DeployConfig,
    /// Per-stage batch policy for the shared stage batchers (forced
    /// drain-only, exactly as a [`crate::SessionBuilder`]-built session
    /// does). Its widest flush is also each session's front-door
    /// coalescing width.
    pub stage_policy: BatchPolicy,
}

impl GatewayOptions {
    /// Options with the given numerics and the default stage policy.
    pub fn new(cfg: DeployConfig) -> Self {
        Self {
            cfg,
            stage_policy: BatchPolicy::default(),
        }
    }
}

/// Per-tenant serving counters. `admitted + shed` is every submit the
/// tenant ever offered; `rows_served + expired + queued` accounts for
/// every admitted request (served, deadline-shed, or still waiting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's registration name.
    pub name: String,
    /// The tenant's SLO class.
    pub class: SloClass,
    /// Requests that passed admission control into the queue.
    pub admitted: u64,
    /// Requests turned away at admission ([`ServeError::Shed`]).
    pub shed: u64,
    /// Admitted requests shed later by the shed deadline.
    pub expired: u64,
    /// Admitted requests served to completion.
    pub rows_served: u64,
    /// Deepest the admission queue ever got.
    pub queue_high_water: usize,
    /// Requests admitted but not yet pumped.
    pub queued: usize,
}

/// Gateway-wide aggregate counters (sum over tenants and sessions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Registered models.
    pub models: usize,
    /// Registered tenants.
    pub tenants: usize,
    /// Requests admitted across all tenants.
    pub admitted: u64,
    /// Requests shed at admission across all tenants.
    pub shed: u64,
    /// Admitted requests later shed by a deadline.
    pub expired: u64,
    /// Requests served to completion.
    pub rows_served: u64,
    /// Coalesced whole-model forward batches run across all sessions —
    /// *the* coalescing observable: two tenants sharing a model advance
    /// this less than the sum of their solo runs would.
    pub batches_run: u64,
}

/// One registered model: the shared stage-batcher template and the single
/// live session every tenant of this model routes through.
struct GatewayModel<'m, M: ServableModel> {
    name: String,
    model: &'m M,
    batchers: StageBatchers,
    session: ModelSession<'m, M>,
    /// Round-robin start cursor per SLO class, rotated every pump so no
    /// same-class tenant is structurally drained first.
    cursors: [Cell<usize>; 3],
}

/// One admitted, not-yet-pumped request.
struct Queued<I> {
    input: I,
    resolver: PendingResolver,
    /// Stamped at admission only when the tenant has a shed deadline, so
    /// deadline-free tenants (the defaults) read no clock on submit.
    enqueued_at: Option<Instant>,
}

/// One open decode stream: the tenant it bills to and the token prefix
/// grown so far. The prefix only advances when a step is *admitted* — a
/// shed or rejected step leaves it untouched, so retrying the same step
/// is always sound.
struct DecodeStream<I> {
    tenant: TenantId,
    prefix: RefCell<Option<I>>,
    steps: Cell<usize>,
}

struct Tenant<I> {
    name: String,
    model: ModelId,
    class: SloClass,
    policy: ClassPolicy,
    queue: RefCell<VecDeque<Queued<I>>>,
    admitted: Cell<u64>,
    shed: Cell<u64>,
    expired: Cell<u64>,
    rows_served: Cell<u64>,
    queue_high_water: Cell<usize>,
}

/// The multi-tenant serving front door. See the module docs.
pub struct ServeGateway<'m, M: ServableModel> {
    opts: GatewayOptions,
    models: Vec<GatewayModel<'m, M>>,
    tenants: Vec<Tenant<M::Input>>,
    streams: Vec<DecodeStream<M::Input>>,
    closed: Cell<bool>,
}

impl<'m, M: ServableModel> ServeGateway<'m, M> {
    /// An empty gateway; register models, then tenants, then serve.
    pub fn new(opts: GatewayOptions) -> Self {
        Self {
            opts,
            models: Vec::new(),
            tenants: Vec::new(),
            streams: Vec::new(),
            closed: Cell::new(false),
        }
    }

    /// Registers a model: compiles its shared [`StageBatchers`] template
    /// through the runtime's engine cache and opens the gateway's one live
    /// session over it ([`crate::SessionBuilder::shared`] +
    /// [`crate::SessionBuilder::build_model`]). Every
    /// tenant bound to the returned [`ModelId`] drains through these
    /// shared per-stage windows.
    pub fn register_model(
        &mut self,
        rt: &mut LutRuntime,
        name: &str,
        model: &'m M,
        ps: &'m ParamSet,
    ) -> ModelId {
        let batchers = rt.stage_batchers(model, ps, self.opts.cfg, self.opts.stage_policy);
        let session = rt.serve(model, ps).shared(&batchers).build_model();
        let id = ModelId(self.models.len());
        self.models.push(GatewayModel {
            name: name.to_string(),
            model,
            batchers,
            session,
            cursors: [Cell::new(0), Cell::new(0), Cell::new(0)],
        });
        id
    }

    /// Registers a tenant on a model under a class's default policy.
    pub fn register_tenant(&mut self, name: &str, model: ModelId, class: SloClass) -> TenantId {
        self.register_tenant_with(name, model, class, class.default_policy())
    }

    /// [`ServeGateway::register_tenant`] with explicit per-tenant knobs.
    pub fn register_tenant_with(
        &mut self,
        name: &str,
        model: ModelId,
        class: SloClass,
        policy: ClassPolicy,
    ) -> TenantId {
        assert!(
            model.0 < self.models.len(),
            "tenant `{name}` registered on unknown model id {}",
            model.0
        );
        let id = TenantId(self.tenants.len());
        self.tenants.push(Tenant {
            name: name.to_string(),
            model,
            class,
            policy: ClassPolicy {
                max_queue: policy.max_queue.max(1),
                ..policy
            },
            queue: RefCell::new(VecDeque::new()),
            admitted: Cell::new(0),
            shed: Cell::new(0),
            expired: Cell::new(0),
            rows_served: Cell::new(0),
            queue_high_water: Cell::new(0),
        });
        id
    }

    /// Shed-or-queue admission: validates the request at the front door
    /// (unknown tenant / bad input → [`ServeError::Invalid`], closed
    /// gateway → [`ServeError::Closed`]), then either turns it away with
    /// [`ServeError::Shed`] — the tenant's bounded queue is full, nothing
    /// was enqueued — or admits it and returns the [`Pending`] handle the
    /// next [`ServeGateway::pump`] will resolve.
    pub fn submit(&self, tenant: TenantId, input: M::Input) -> Result<Pending, ServeError> {
        if self.closed.get() {
            return Err(ServeError::Closed);
        }
        let Some(t) = self.tenants.get(tenant.0) else {
            return Err(ServeError::Invalid {
                reason: format!("unknown tenant id {}", tenant.0),
            });
        };
        let gm = &self.models[t.model.0];
        if let Err(reason) = gm.model.validate_input(&input) {
            return Err(ServeError::Invalid { reason });
        }
        let mut queue = t.queue.borrow_mut();
        if queue.len() >= t.policy.max_queue {
            t.shed.set(t.shed.get() + 1);
            return Err(ServeError::Shed {
                queue_depth: queue.len(),
            });
        }
        let (resolver, pending) = Pending::channel();
        queue.push_back(Queued {
            input,
            resolver,
            enqueued_at: t.policy.shed_deadline.map(|_| Instant::now()),
        });
        t.admitted.set(t.admitted.get() + 1);
        if queue.len() > t.queue_high_water.get() {
            t.queue_high_water.set(queue.len());
        }
        Ok(pending)
    }

    /// Opens a decode stream billed to `tenant`. The tenant's model must
    /// honour the incremental-forward contract
    /// ([`ServableModel::decode_contract`], e.g. a causal transformer) —
    /// anything else is [`ServeError::Invalid`], as is an unknown tenant;
    /// a closed gateway is [`ServeError::Closed`].
    pub fn open_stream(&mut self, tenant: TenantId) -> Result<StreamId, ServeError> {
        if self.closed.get() {
            return Err(ServeError::Closed);
        }
        let Some(t) = self.tenants.get(tenant.0) else {
            return Err(ServeError::Invalid {
                reason: format!("unknown tenant id {}", tenant.0),
            });
        };
        self.models[t.model.0]
            .model
            .decode_contract()
            .map_err(|reason| ServeError::Invalid { reason })?;
        let id = StreamId(self.streams.len());
        self.streams.push(DecodeStream {
            tenant,
            prefix: RefCell::new(None),
            steps: Cell::new(0),
        });
        Ok(id)
    }

    /// Feeds one token step to a decode stream: grows the stream's prefix
    /// ([`ServableModel::extend_input`]; the first step *is* the prefix)
    /// and submits the grown prefix through the stream's tenant — same
    /// admission control, same SLO class, same pump rounds as
    /// [`ServeGateway::submit`]. The returned handle resolves with the
    /// grown prefix's logits.
    ///
    /// On any error — shed, closed, invalid step — the prefix does **not**
    /// advance, so the caller may retry the same step after backing off;
    /// a shed step still counts in the tenant's `shed` tally, keeping
    /// `admitted + shed` equal to the steps offered.
    pub fn submit_step(&self, stream: StreamId, step: M::Input) -> Result<Pending, ServeError> {
        let Some(s) = self.streams.get(stream.0) else {
            return Err(ServeError::Invalid {
                reason: format!("unknown stream id {}", stream.0),
            });
        };
        let grown = match s.prefix.borrow().as_ref() {
            Some(prefix) => self.models[self.tenants[s.tenant.0].model.0]
                .model
                .extend_input(prefix, &step)
                .map_err(|reason| ServeError::Invalid { reason })?,
            None => step,
        };
        let pending = self.submit(s.tenant, grown.clone())?;
        *s.prefix.borrow_mut() = Some(grown);
        s.steps.set(s.steps.get() + 1);
        Ok(pending)
    }

    /// Steps admitted on a stream so far (`None` for an unknown id).
    pub fn stream_steps(&self, stream: StreamId) -> Option<usize> {
        self.streams.get(stream.0).map(|s| s.steps.get())
    }

    /// Positions in a stream's grown prefix (`None` for an unknown id,
    /// `0` before the first admitted step).
    pub fn stream_positions(&self, stream: StreamId) -> Option<usize> {
        let s = self.streams.get(stream.0)?;
        let model = self.models[self.tenants[s.tenant.0].model.0].model;
        Some(
            s.prefix
                .borrow()
                .as_ref()
                .map_or(0, |p| model.input_positions(p)),
        )
    }

    /// One drain round: for every model, gathers up to each tenant's
    /// per-round quota — classes in priority order, same-class tenants
    /// round-robin from a rotating start — submits the gathered requests
    /// through the model's shared session, flushes **once** (so everything
    /// gathered this round coalesces), and resolves each tenant handle
    /// with its logits, reusing the flush's single resolution stamp.
    /// Returns how many requests were served.
    pub fn pump(&self) -> usize {
        // One clock read per round, and only if some tenant can expire.
        let now = self
            .tenants
            .iter()
            .any(|t| t.policy.shed_deadline.is_some())
            .then(Instant::now);
        let mut served = 0;
        for (mid, gm) in self.models.iter().enumerate() {
            served += self.pump_model(mid, gm, now);
        }
        served
    }

    fn pump_model(&self, mid: usize, gm: &GatewayModel<'m, M>, now: Option<Instant>) -> usize {
        let mut gathered: Vec<(usize, PendingResolver, Pending)> = Vec::new();
        for class in SloClass::ALL {
            let ids: Vec<usize> = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| t.model.0 == mid && t.class == class)
                .map(|(i, _)| i)
                .collect();
            if ids.is_empty() {
                continue;
            }
            let cursor = &gm.cursors[class.index()];
            let start = cursor.get() % ids.len();
            cursor.set(start + 1);
            for off in 0..ids.len() {
                let tid = ids[(start + off) % ids.len()];
                let t = &self.tenants[tid];
                let quota = t.policy.batch.max_batch();
                let mut taken = 0;
                while taken < quota {
                    let entry = t.queue.borrow_mut().pop_front();
                    let Some(entry) = entry else { break };
                    if let (Some(deadline), Some(at), Some(now)) =
                        (t.policy.shed_deadline, entry.enqueued_at, now)
                    {
                        if now.saturating_duration_since(at) > deadline {
                            // Stale: drop the resolver (the waiter observes
                            // `Closed`) and account it as expired, not served.
                            t.expired.set(t.expired.get() + 1);
                            continue;
                        }
                    }
                    match gm.session.submit(entry.input) {
                        Ok(pending) => {
                            // The session resolves this handle at flush; the
                            // tenant's own handle resolves from it below.
                            gathered.push((tid, entry.resolver, pending));
                            taken += 1;
                        }
                        Err(_) => {
                            // Unreachable in practice: the input passed
                            // `validate_input` at admission. Dropping the
                            // resolver reports `Closed` to the waiter.
                        }
                    }
                }
            }
        }
        if gathered.is_empty() {
            return 0;
        }
        gm.session.flush();
        let mut served = 0;
        for (tid, resolver, pending) in gathered {
            if let Ok((rows, timing)) = pending.wait_timed() {
                resolver.resolve_at(rows, timing.resolved_at);
                let t = &self.tenants[tid];
                t.rows_served.set(t.rows_served.get() + 1);
                served += 1;
            }
        }
        served
    }

    /// Serves until every admission queue is empty (requests admitted
    /// *during* the drain — there is no new submitter on this thread —
    /// are not a concern; the loop simply runs until queues are dry).
    pub fn drain(&self) {
        loop {
            let before = self.queued();
            if before == 0 {
                return;
            }
            let _ = self.pump();
            if self.queued() >= before {
                // Defensive: no progress this round (cannot happen — a pump
                // always consumes from every non-empty visited queue).
                return;
            }
        }
    }

    /// Graceful shutdown: drains every admitted request, then refuses
    /// further submits with [`ServeError::Closed`]. Dropping the gateway
    /// closes it the same way.
    pub fn close(&self) {
        if !self.closed.get() {
            self.drain();
            self.closed.set(true);
        }
    }

    /// Requests admitted but not yet pumped, across all tenants.
    pub fn queued(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.borrow().len()).sum()
    }

    /// The named model's registration handle, if registered.
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|m| m.name == name).map(ModelId)
    }

    /// One tenant's counters, or `None` for an unknown id.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.tenants.get(tenant.0).map(|t| TenantStats {
            name: t.name.clone(),
            class: t.class,
            admitted: t.admitted.get(),
            shed: t.shed.get(),
            expired: t.expired.get(),
            rows_served: t.rows_served.get(),
            queue_high_water: t.queue_high_water.get(),
            queued: t.queue.borrow().len(),
        })
    }

    /// Every tenant's counters, in registration order.
    pub fn all_tenant_stats(&self) -> Vec<TenantStats> {
        (0..self.tenants.len())
            .filter_map(|i| self.tenant_stats(TenantId(i)))
            .collect()
    }

    /// Gateway-wide aggregates (see [`GatewayStats`]).
    pub fn stats(&self) -> GatewayStats {
        GatewayStats {
            models: self.models.len(),
            tenants: self.tenants.len(),
            admitted: self.tenants.iter().map(|t| t.admitted.get()).sum(),
            shed: self.tenants.iter().map(|t| t.shed.get()).sum(),
            expired: self.tenants.iter().map(|t| t.expired.get()).sum(),
            rows_served: self.tenants.iter().map(|t| t.rows_served.get()).sum(),
            batches_run: self
                .models
                .iter()
                .map(|m| m.session.batches_run() as u64)
                .sum(),
        }
    }

    /// Per-stage counters of one model's shared batchers (accumulating
    /// across the gateway's whole lifetime; diff two snapshots with
    /// [`StageStats::delta`] for per-interval views). Empty for an
    /// unknown id.
    pub fn stage_stats(&self, model: ModelId) -> Vec<(&str, StageStats)> {
        self.models
            .get(model.0)
            .map(|m| m.batchers.stage_stats())
            .unwrap_or_default()
    }
}

impl<M: ServableModel> Drop for ServeGateway<'_, M> {
    fn drop(&mut self) {
        // Graceful: admitted work is served before the sessions (and their
        // deploy state) go away.
        self.close();
    }
}

impl<M: ServableModel> std::fmt::Debug for ServeGateway<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeGateway")
            .field("models", &self.models.len())
            .field("tenants", &self.tenants.len())
            .field("queued", &self.queued())
            .field("closed", &self.closed.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{lutify_convnet, lutify_transformer, CentroidInit, ConvertPolicy};
    use crate::lut_gemm::LutConfig;
    use lutdla_models::trainable::{gpt_mini, resnet20_mini, ConvNet, TransformerClassifier};
    use lutdla_tensor::Tensor;
    use lutdla_vq::{FloatPrecision, LutQuant, SubmitError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_combos() -> Vec<DeployConfig> {
        let quants = [LutQuant::F32, LutQuant::F16, LutQuant::Int8];
        let precisions = [
            FloatPrecision::Fp32,
            FloatPrecision::Bf16,
            FloatPrecision::Fp16,
        ];
        quants
            .iter()
            .flat_map(|&lut_quant| {
                precisions.iter().map(move |&precision| DeployConfig {
                    lut_quant,
                    precision,
                })
            })
            .collect()
    }

    fn converted_convnet(seed: u64) -> (ParamSet, ConvNet, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let images = Tensor::randn(&mut rng, &[6, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            images.clone(),
            &mut rng,
        );
        (ps, net, images)
    }

    fn converted_gpt(seed: u64) -> (ParamSet, TransformerClassifier, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let mut net = gpt_mini(&mut ps, 8);
        let tokens: Vec<usize> = (0..6 * 16).map(|i| (i * 7 + 5) % 64).collect();
        let _ = lutify_transformer(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            &tokens,
            6,
            16,
            &mut rng,
        );
        (ps, net, tokens)
    }

    fn image(images: &Tensor, i: usize) -> Tensor {
        let per = 3 * 16 * 16;
        let i = i % images.dims()[0];
        Tensor::from_vec(images.data()[i * per..(i + 1) * per].to_vec(), &[3, 16, 16])
    }

    /// Each request's logits from a solo `ModelSession` — the bit-identity
    /// reference every gateway result must equal exactly.
    fn solo_reference(
        rt: &mut LutRuntime,
        batchers: &StageBatchers,
        net: &ConvNet,
        ps: &ParamSet,
        inputs: &[Tensor],
    ) -> Vec<Vec<f32>> {
        let session = rt.serve(net, ps).shared(batchers).build_model();
        let handles: Vec<_> = inputs
            .iter()
            .map(|x| session.submit(x.clone()).expect("valid image"))
            .collect();
        session.flush();
        handles
            .into_iter()
            .map(|h| h.wait().expect("solo session alive"))
            .collect()
    }

    /// Acceptance property (tentpole §4): gateway results are bit-identical
    /// to per-tenant solo sessions for every LutQuant × FloatPrecision
    /// combo — coalescing across tenants only changes batch grouping.
    #[test]
    fn gateway_matches_solo_sessions_across_all_combos() {
        let (ps, net, images) = converted_convnet(130);
        let inputs: Vec<Tensor> = (0..6).map(|i| image(&images, i)).collect();
        for cfg in all_combos() {
            let mut rt = LutRuntime::new(cfg);
            let batchers = rt.stage_batchers(&net, &ps, cfg, BatchPolicy::default());
            let reference = solo_reference(&mut rt, &batchers, &net, &ps, &inputs);

            let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
            let model = gw.register_model(&mut rt, "resnet", &net, &ps);
            let a = gw.register_tenant("a", model, SloClass::Latency);
            let b = gw.register_tenant("b", model, SloClass::Throughput);
            // The two tenants interleave their in-flight requests.
            let handles: Vec<_> = inputs
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    let tenant = if i % 2 == 0 { a } else { b };
                    gw.submit(tenant, x.clone()).expect("admitted")
                })
                .collect();
            gw.drain();
            for (i, h) in handles.into_iter().enumerate() {
                let rows = h.wait().expect("gateway alive");
                assert_eq!(
                    rows, reference[i],
                    "request {i} diverged from solo at {cfg:?}"
                );
            }
        }
    }

    /// Acceptance property (tentpole §1/§3 + criteria): two tenants
    /// submitting concurrently coalesce into strictly fewer whole-model
    /// batches than the sum of two solo runs.
    #[test]
    fn concurrent_tenants_coalesce_into_fewer_batches_than_solo_runs() {
        let (ps, net, images) = converted_convnet(132);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let a_inputs: Vec<Tensor> = (0..3).map(|i| image(&images, i)).collect();
        let b_inputs: Vec<Tensor> = (3..6).map(|i| image(&images, i)).collect();

        // Solo baselines: each tenant alone flushes (at least) one batch.
        let mut solo_batches = 0;
        let mut solo_logits = Vec::new();
        for inputs in [&a_inputs, &b_inputs] {
            let session = rt.serve(&net, &ps).config(cfg).build_model();
            let logits = session.run(inputs.iter().cloned()).expect("solo run");
            solo_batches += session.batches_run();
            solo_logits.push(logits);
        }
        assert_eq!(solo_batches, 2);

        let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
        let model = gw.register_model(&mut rt, "resnet", &net, &ps);
        let a = gw.register_tenant("a", model, SloClass::Latency);
        let b = gw.register_tenant("b", model, SloClass::Latency);
        let mut handles = Vec::new();
        for (xa, xb) in a_inputs.iter().zip(&b_inputs) {
            handles.push((a, gw.submit(a, xa.clone()).expect("admitted")));
            handles.push((b, gw.submit(b, xb.clone()).expect("admitted")));
        }
        assert_eq!(gw.pump(), 6);

        let stats = gw.stats();
        assert_eq!(stats.rows_served, 6);
        assert!(
            (stats.batches_run as usize) < solo_batches,
            "no cross-tenant coalescing: gateway ran {} batches vs {solo_batches} solo",
            stats.batches_run
        );
        assert_eq!(stats.batches_run, 1, "one pump, one coalesced flush");

        // …and the coalesced logits still equal the solo ones, bitwise.
        let (mut ia, mut ib) = (0, 0);
        for (tenant, h) in handles {
            let rows = h.wait().expect("gateway alive");
            let (solo, idx) = if tenant == a {
                (&solo_logits[0], &mut ia)
            } else {
                (&solo_logits[1], &mut ib)
            };
            let n = solo.dims()[1];
            assert_eq!(rows.as_slice(), &solo.data()[*idx * n..(*idx + 1) * n]);
            *idx += 1;
        }

        // The shared per-stage batchers saw all 6 rows in their windows.
        for (name, s) in gw.stage_stats(model) {
            assert!(s.rows_served > 0, "stage {name} served nothing");
        }
    }

    /// Satellite: deterministic overload. Equal offered load, default-style
    /// asymmetric queues → `BestEffort` sheds (with the structured error)
    /// while `Latency` still admits, and every admitted request is served
    /// bit-identically — no rows lost.
    #[test]
    fn best_effort_sheds_before_latency_and_admitted_rows_survive() {
        let (ps, net, images) = converted_convnet(133);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let batchers = rt.stage_batchers(&net, &ps, cfg, BatchPolicy::default());
        let inputs: Vec<Tensor> = (0..10).map(|i| image(&images, i)).collect();
        let reference = solo_reference(&mut rt, &batchers, &net, &ps, &inputs);

        let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
        let model = gw.register_model(&mut rt, "resnet", &net, &ps);
        let lat = gw.register_tenant_with(
            "interactive",
            model,
            SloClass::Latency,
            ClassPolicy {
                max_queue: 12,
                ..SloClass::Latency.default_policy()
            },
        );
        let be = gw.register_tenant_with(
            "scavenger",
            model,
            SloClass::BestEffort,
            ClassPolicy {
                max_queue: 3,
                ..SloClass::BestEffort.default_policy()
            },
        );

        // Offer the same 10 requests to both, alternating, without pumping:
        // BestEffort's shallower queue must shed first (and Latency not at
        // all).
        let mut admitted: Vec<(usize, Pending)> = Vec::new();
        let mut be_sheds = Vec::new();
        for (i, x) in inputs.iter().enumerate() {
            match gw.submit(lat, x.clone()) {
                Ok(h) => admitted.push((i, h)),
                Err(e) => panic!("latency request {i} rejected: {e}"),
            }
            match gw.submit(be, x.clone()) {
                Ok(h) => admitted.push((i, h)),
                Err(e) => be_sheds.push((i, e)),
            }
        }
        assert_eq!(be_sheds.len(), 7, "3-deep queue admits 3 of 10");
        assert_eq!(
            be_sheds[0],
            (3, ServeError::Shed { queue_depth: 3 }),
            "first shed: the 4th best-effort request, at the bound"
        );
        let lat_stats = gw.tenant_stats(lat).expect("registered");
        let be_stats = gw.tenant_stats(be).expect("registered");
        assert_eq!((lat_stats.admitted, lat_stats.shed), (10, 0));
        assert_eq!((be_stats.admitted, be_stats.shed), (3, 7));
        assert_eq!(be_stats.queue_high_water, 3);

        // Graceful drain: every admitted request resolves, bit-identical.
        gw.drain();
        for (i, h) in admitted {
            let rows = h.wait().expect("admitted request lost");
            assert_eq!(rows, reference[i], "admitted request {i} diverged");
        }
        let stats = gw.stats();
        assert_eq!(stats.rows_served, 13);
        assert_eq!(stats.shed, 7);
        assert_eq!(gw.queued(), 0);
    }

    /// A shed deadline expires stale admitted work at pump time instead of
    /// serving it; deadline-free tenants are untouched.
    #[test]
    fn shed_deadline_expires_stale_queued_requests() {
        let (ps, net, images) = converted_convnet(134);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
        let model = gw.register_model(&mut rt, "resnet", &net, &ps);
        let stale = gw.register_tenant_with(
            "stale",
            model,
            SloClass::BestEffort,
            ClassPolicy {
                shed_deadline: Some(Duration::ZERO),
                ..SloClass::BestEffort.default_policy()
            },
        );
        let fresh = gw.register_tenant("fresh", model, SloClass::Latency);

        let h_stale = gw.submit(stale, image(&images, 0)).expect("admitted");
        let h_fresh = gw.submit(fresh, image(&images, 1)).expect("admitted");
        // Let the zero deadline lapse unambiguously.
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(gw.pump(), 1, "only the fresh request is served");

        assert_eq!(
            h_stale.wait(),
            Err(SubmitError::Closed),
            "expired handle reports closed"
        );
        assert!(h_fresh.wait().is_ok());
        let s = gw.tenant_stats(stale).expect("registered");
        assert_eq!((s.admitted, s.expired, s.rows_served), (1, 1, 0));
        assert_eq!(gw.stats().expired, 1);
    }

    /// Front-door rejection paths: unknown tenants and invalid inputs
    /// never reach a queue; a closed gateway refuses everything.
    #[test]
    fn front_door_rejects_unknown_tenants_bad_inputs_and_closed_submits() {
        let (ps, net, images) = converted_convnet(135);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
        let model = gw.register_model(&mut rt, "resnet", &net, &ps);
        let t = gw.register_tenant("t", model, SloClass::Latency);

        match gw.submit(TenantId(99), image(&images, 0)) {
            Err(ServeError::Invalid { reason }) => assert!(reason.contains("unknown tenant")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        let bad = Tensor::from_vec(vec![0.0; 4], &[2, 2]);
        assert!(matches!(gw.submit(t, bad), Err(ServeError::Invalid { .. })));
        assert_eq!(gw.stats().admitted, 0, "rejections never enqueue");

        // close() drains admitted work, then refuses new submits.
        let h = gw.submit(t, image(&images, 0)).expect("admitted");
        gw.close();
        assert!(h.wait().is_ok(), "close lost an admitted request");
        assert_eq!(
            gw.submit(t, image(&images, 1)).map(|_| ()),
            Err(ServeError::Closed)
        );
        gw.close(); // idempotent
    }

    /// Fairness: same-class tenants under a narrow per-round quota get
    /// served in lock-step — neither can starve the other.
    #[test]
    fn same_class_tenants_share_rounds_equally_under_quota() {
        let (ps, net, images) = converted_convnet(136);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
        let model = gw.register_model(&mut rt, "resnet", &net, &ps);
        let quota1 = ClassPolicy {
            max_queue: 8,
            batch: BatchPolicy::Static(BatchOptions::immediate(1)),
            shed_deadline: None,
        };
        let a = gw.register_tenant_with("a", model, SloClass::Throughput, quota1);
        let b = gw.register_tenant_with("b", model, SloClass::Throughput, quota1);
        let mut handles = Vec::new();
        for i in 0..4 {
            handles.push(gw.submit(a, image(&images, i)).expect("admitted"));
            handles.push(gw.submit(b, image(&images, i)).expect("admitted"));
        }
        for round in 1..=4 {
            assert_eq!(gw.pump(), 2, "round {round} must serve one per tenant");
            let sa = gw.tenant_stats(a).expect("a").rows_served;
            let sb = gw.tenant_stats(b).expect("b").rows_served;
            assert_eq!((sa, sb), (round, round), "unequal service in round {round}");
        }
        for h in handles {
            assert!(h.wait().is_ok());
        }
    }

    /// Multi-model routing: tenants on different registered models get
    /// their own model's logits (each bit-identical to that model's solo
    /// session), through one gateway.
    #[test]
    fn tenants_route_to_their_registered_model() {
        let (ps1, net1, images) = converted_convnet(137);
        let (ps2, net2, _) = converted_convnet(138);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let inputs: Vec<Tensor> = (0..4).map(|i| image(&images, i)).collect();
        let b1 = rt.stage_batchers(&net1, &ps1, cfg, BatchPolicy::default());
        let ref1 = solo_reference(&mut rt, &b1, &net1, &ps1, &inputs);
        let b2 = rt.stage_batchers(&net2, &ps2, cfg, BatchPolicy::default());
        let ref2 = solo_reference(&mut rt, &b2, &net2, &ps2, &inputs);

        let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
        let m1 = gw.register_model(&mut rt, "resnet-a", &net1, &ps1);
        let m2 = gw.register_model(&mut rt, "resnet-b", &net2, &ps2);
        assert_eq!(gw.model_id("resnet-a"), Some(m1));
        assert_eq!(gw.model_id("resnet-b"), Some(m2));
        assert_eq!(gw.model_id("nope"), None);
        let t1 = gw.register_tenant("on-a", m1, SloClass::Latency);
        let t2 = gw.register_tenant("on-b", m2, SloClass::Latency);

        let mut handles = Vec::new();
        for x in &inputs {
            handles.push((t1, gw.submit(t1, x.clone()).expect("admitted")));
            handles.push((t2, gw.submit(t2, x.clone()).expect("admitted")));
        }
        gw.drain();
        let (mut i1, mut i2) = (0, 0);
        for (tenant, h) in handles {
            let rows = h.wait().expect("gateway alive");
            if tenant == t1 {
                assert_eq!(rows, ref1[i1], "model-a request {i1} diverged");
                i1 += 1;
            } else {
                assert_eq!(rows, ref2[i2], "model-b request {i2} diverged");
                i2 += 1;
            }
        }
        assert_eq!(gw.stats().models, 2);
        assert_eq!(gw.stats().rows_served, 8);
    }

    /// Dropping the gateway is a graceful close: queued work is served,
    /// not abandoned.
    #[test]
    fn drop_drains_admitted_requests() {
        let (ps, net, images) = converted_convnet(139);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let handle = {
            let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
            let model = gw.register_model(&mut rt, "resnet", &net, &ps);
            let t = gw.register_tenant("t", model, SloClass::Latency);
            gw.submit(t, image(&images, 0)).expect("admitted")
            // `gw` drops here with the request still queued.
        };
        assert!(handle.wait().is_ok(), "drop abandoned an admitted request");
    }

    /// Satellite: a decode stream with in-flight steps survives graceful
    /// shutdown — `close()` drains every admitted step (none lost, each
    /// bit-identical to a solo session over the same grown prefix), shed
    /// steps never advance the prefix, and `admitted + shed` accounts for
    /// every step offered.
    #[test]
    fn close_drains_in_flight_decode_steps_and_accounts_every_step() {
        let (ps, net, tokens) = converted_gpt(140);
        let cfg = DeployConfig::fp32();
        let mut rt = LutRuntime::new(cfg);
        let mut gw = ServeGateway::new(GatewayOptions::new(cfg));
        let model = gw.register_model(&mut rt, "gpt", &net, &ps);
        let t = gw.register_tenant_with(
            "decoder",
            model,
            SloClass::BestEffort,
            ClassPolicy {
                max_queue: 4,
                ..SloClass::BestEffort.default_policy()
            },
        );
        let stream = gw.open_stream(t).expect("gpt_mini is causal");

        // Offer 7 single-token steps without pumping: the 4-deep queue
        // admits 4 in flight, sheds 3, and a shed step must not grow the
        // prefix.
        let offered = 7u64;
        let mut admitted: Vec<(Vec<usize>, Pending)> = Vec::new();
        let mut shed = 0u64;
        let mut prefix: Vec<usize> = Vec::new();
        for (i, &tok) in tokens.iter().enumerate().take(offered as usize) {
            match gw.submit_step(stream, vec![tok]) {
                Ok(h) => {
                    prefix.push(tok);
                    admitted.push((prefix.clone(), h));
                }
                Err(ServeError::Shed { .. }) => shed += 1,
                Err(e) => panic!("step {i} rejected unexpectedly: {e}"),
            }
        }
        assert_eq!((admitted.len(), shed), (4, 3));
        let st = gw.tenant_stats(t).expect("registered");
        assert_eq!(st.admitted + st.shed, offered, "a step went unaccounted");
        assert_eq!((st.admitted, st.shed), (4, 3));
        assert_eq!(gw.stream_steps(stream), Some(4));
        assert_eq!(gw.stream_positions(stream), Some(4));

        // Close with all four steps still in flight: the drain serves them.
        gw.close();
        assert_eq!(gw.queued(), 0);
        assert_eq!(gw.stats().rows_served, 4);
        // A post-close step is refused without touching the prefix.
        assert_eq!(
            gw.submit_step(stream, vec![tokens[0]]).map(|_| ()),
            Err(ServeError::Closed)
        );
        assert_eq!(gw.stream_positions(stream), Some(4));
        drop(gw); // undeploys, so the solo reference below can go live

        let solo = rt.serve(&net, &ps).build_model();
        for (i, (prefix, h)) in admitted.into_iter().enumerate() {
            let rows = h.wait().expect("admitted step lost in drain");
            let want = solo.submit(prefix).expect("valid prefix");
            solo.flush();
            let want = want.wait().expect("solo session alive");
            assert_eq!(rows, want, "decode step {i} diverged from solo eval");
        }
    }
}
