//! The LUT operator with straight-through-estimator training
//! (paper §V: operator replace, STE, reconstruction loss).
//!
//! [`LutGemm`] implements [`lutdla_models::trainable::GemmOp`], so it can be
//! swapped into any architecture built on `DenseUnit`s. During training the
//! forward path quantizes activations to their nearest centroids
//! (`Â = gather(argmin distance(A, Z))`) and multiplies by the dense weight;
//! the backward path:
//!
//! * routes `∂L/∂Â` to the activations unchanged (STE — paper Eq. for
//!   `∂L/∂A ≈ ∂L/∂Â`),
//! * scatter-adds `∂L/∂Â` into the selected centroids,
//! * adds the symmetric reconstruction loss
//!   `Lre = ‖SG(ÂW) − AW‖² + ‖ÂW − SG(AW)‖²` weighted by `recon_weight`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use lutdla_nn::{CustomOp, Graph, NodeId, ParamId, ParamSet};
use lutdla_tensor::Tensor;
use lutdla_vq::{Codebook, Distance, MicroBatcher, Pending, ProductQuantizer, SharedEngine};
use rand::Rng;

use crate::deploy::DecodeStageCache;
use lutdla_models::trainable::GemmOp;

/// Hyper-parameters of a LUT operator.
#[derive(Debug, Clone, Copy)]
pub struct LutConfig {
    /// Subvector length `v`.
    pub v: usize,
    /// Centroids per codebook `c`.
    pub c: usize,
    /// Similarity metric.
    pub distance: Distance,
    /// Weight of the reconstruction loss (paper uses 0.01–1 depending on
    /// stage/model).
    pub recon_weight: f32,
}

impl Default for LutConfig {
    fn default() -> Self {
        Self {
            v: 4,
            c: 16,
            distance: Distance::L2,
            recon_weight: 0.05,
        }
    }
}

/// A lookup-table GEMM: centroid codebooks + the original dense weight.
///
/// Centroids are ordinary parameters (one `[c, v]` tensor per subspace), so
/// the freeze/unfreeze dance of multistage training is just
/// [`ParamSet::set_trainable`] over [`LutGemm::centroid_params`].
pub struct LutGemm {
    weight: ParamId,
    centroids: Vec<ParamId>,
    cfg: LutConfig,
    in_dim: usize,
    out_dim: usize,
    aux: RefCell<Option<NodeId>>,
    /// When false, the reconstruction loss is skipped (ablation switch).
    recon_enabled: bool,
    deploy: RefCell<Option<DeployState>>,
}

/// Frozen inference artifacts: a handle to the batched engine built from
/// the exported quantizer and table — owned by the [`crate::LutRuntime`]
/// that installed it (and possibly shared with its cache and serving
/// sessions) — stamped with the parameter version it was frozen at so
/// serving stale tables is caught in debug builds.
struct DeployState {
    params_version: u64,
    engine: SharedEngine,
    /// When set, eval-mode forwards submit their activation block to this
    /// per-stage micro-batcher (zero-delay, served immediately) instead of
    /// locking the engine directly — a whole-model serving session
    /// installs one per LUT stage as its per-layer observability point and
    /// batching-policy seam (bit-identical either way; rows never mix).
    stage: Option<Arc<MicroBatcher>>,
    /// When set, eval-mode forwards route through a step-to-step prefix
    /// cache instead: unchanged leading rows reuse their packed codes and
    /// only new rows re-walk the codebook (bit-identical either way). A
    /// [`crate::DecodeSession`] installs one per LUT stage; takes
    /// precedence over `stage` (a decode deploy never sets both).
    decode: Option<Rc<DecodeStageCache>>,
}

impl LutGemm {
    /// Wraps an existing dense weight (`[K, N]` parameter) with randomly
    /// initialised centroids (the single-stage baseline's starting point).
    pub fn from_weight_random<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        weight: ParamId,
        cfg: LutConfig,
    ) -> Self {
        let (in_dim, out_dim) = {
            let w = ps.value(weight);
            (w.dims()[0], w.dims()[1])
        };
        let n_sub = in_dim.div_ceil(cfg.v);
        let centroids = (0..n_sub)
            .map(|s| {
                ps.add(
                    format!("{name}.centroids{s}"),
                    Tensor::randn(rng, &[cfg.c, cfg.v], 0.5),
                )
            })
            .collect();
        Self {
            weight,
            centroids,
            cfg,
            in_dim,
            out_dim,
            aux: RefCell::new(None),
            recon_enabled: true,
            deploy: RefCell::new(None),
        }
    }

    /// Wraps an existing dense weight with centroids initialised by k-means
    /// over calibration activations `calib: [n, K]` (LUTBoost stage ➀).
    pub fn from_weight_kmeans<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        weight: ParamId,
        cfg: LutConfig,
        calib: &Tensor,
    ) -> Self {
        let (in_dim, out_dim) = {
            let w = ps.value(weight);
            (w.dims()[0], w.dims()[1])
        };
        assert_eq!(calib.dims()[1], in_dim, "calibration K mismatch");
        let pq = ProductQuantizer::fit(calib, cfg.v, cfg.c, cfg.distance, rng);
        let centroids = pq
            .codebooks()
            .iter()
            .enumerate()
            .map(|(s, cb)| {
                ps.add(
                    format!("{name}.centroids{s}"),
                    Tensor::from_vec(cb.as_slice().to_vec(), &[cfg.c, cfg.v]),
                )
            })
            .collect();
        Self {
            weight,
            centroids,
            cfg,
            in_dim,
            out_dim,
            aux: RefCell::new(None),
            recon_enabled: true,
            deploy: RefCell::new(None),
        }
    }

    /// The operator's configuration.
    pub fn config(&self) -> &LutConfig {
        &self.cfg
    }

    /// The dense weight handle (shared with the pre-conversion layer).
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// The centroid parameter handles (one per subspace).
    pub fn centroid_params(&self) -> &[ParamId] {
        &self.centroids
    }

    /// Enables/disables the reconstruction loss (ablation).
    pub fn set_recon_enabled(&mut self, enabled: bool) {
        self.recon_enabled = enabled;
    }

    /// Exports the trained codebooks as a [`ProductQuantizer`] plus the
    /// current weight, for LUT-table construction and deployment.
    pub fn export(&self, ps: &ParamSet) -> (ProductQuantizer, Tensor) {
        let codebooks = self
            .centroids
            .iter()
            .map(|&cid| Codebook::new(ps.value(cid).data().to_vec(), self.cfg.c, self.cfg.v))
            .collect();
        let pq = ProductQuantizer::from_codebooks(codebooks, self.in_dim, self.cfg.distance);
        (pq, ps.value(self.weight).clone())
    }

    /// Freezes the operator for deployment by installing a shared engine
    /// handle, stamped with the [`ParamSet::version`] the engine's tables
    /// were built at.
    ///
    /// This is the runtime's half of deployment: [`crate::LutRuntime`]
    /// resolves (or builds) the engine through its cache and installs it
    /// here — the layer itself never constructs engines. While deployed,
    /// eval-mode forwards run through the engine (the functional twin of
    /// the IMM hardware); training forwards are unaffected. Serving after
    /// further training trips a `debug_assert`, and the trainer's stage
    /// transitions call [`LutGemm::clear_deploy`].
    pub fn install_deploy(&self, engine: SharedEngine, params_version: u64) {
        *self.deploy.borrow_mut() = Some(DeployState {
            params_version,
            engine,
            stage: None,
            decode: None,
        });
    }

    /// [`LutGemm::install_deploy`] routed through a per-stage
    /// [`MicroBatcher`] over the same engine: eval-mode forwards submit
    /// their whole activation block as one request, so blocks from other
    /// pipelines over this layer coalesce into shared engine runs. This is
    /// how a whole-model serving session wires its LUT stages.
    pub fn install_deploy_batched(
        &self,
        engine: SharedEngine,
        stage: Arc<MicroBatcher>,
        params_version: u64,
    ) {
        *self.deploy.borrow_mut() = Some(DeployState {
            params_version,
            engine,
            stage: Some(stage),
            decode: None,
        });
    }

    /// [`LutGemm::install_deploy`] routed through a per-stage decode
    /// prefix cache: eval-mode forwards splice their activation block's
    /// packed codes from the previous step's cached prefix and walk only
    /// the new rows. This is how [`crate::DecodeSession`] wires its LUT
    /// stages.
    pub fn install_deploy_decode(
        &self,
        engine: SharedEngine,
        cache: Rc<DecodeStageCache>,
        params_version: u64,
    ) {
        *self.deploy.borrow_mut() = Some(DeployState {
            params_version,
            engine,
            stage: None,
            decode: Some(cache),
        });
    }

    /// The per-stage micro-batcher, when the layer was deployed through
    /// [`LutGemm::install_deploy_batched`].
    pub fn deployed_stage(&self) -> Option<Arc<MicroBatcher>> {
        self.deploy.borrow().as_ref().and_then(|d| d.stage.clone())
    }

    /// Leaves deployment mode. The engine itself stays alive in any
    /// [`crate::LutRuntime`] cache that built it, ready for a free
    /// re-deploy at the same parameter version.
    pub fn clear_deploy(&self) {
        *self.deploy.borrow_mut() = None;
    }

    /// The installed engine handle, if the layer is deployed.
    pub fn deployed_engine(&self) -> Option<SharedEngine> {
        self.deploy.borrow().as_ref().map(|d| d.engine.clone())
    }

    /// Quantizes activations `x: [M, K]` to `(Â, assignments)`.
    ///
    /// For a ragged final subspace (`v ∤ K`) only the leading `K mod v`
    /// dimensions enter the distance: the trailing centroid slots never
    /// receive gradient ([`LutQuantizeOp::backward`] scatters `j < len`
    /// only), so counting them would bias every argmin by whatever their
    /// initialisation left behind.
    fn quantize(&self, x: &Tensor, ps: &ParamSet) -> (Tensor, Vec<u32>) {
        let (m, k) = (x.dims()[0], x.dims()[1]);
        let v = self.cfg.v;
        let n_sub = self.centroids.len();
        let mut ahat = Tensor::zeros(&[m, k]);
        let mut assign = vec![0u32; m * n_sub];
        for s in 0..n_sub {
            let cents = ps.value(self.centroids[s]);
            let lo = s * v;
            let hi = ((s + 1) * v).min(k);
            let len = hi - lo;
            for i in 0..m {
                let sub = &x.data()[i * k + lo..i * k + hi];
                let idx = self.cfg.distance.argmin_masked(sub, cents.data(), v);
                assign[i * n_sub + s] = idx as u32;
                let cent = &cents.data()[idx * v..idx * v + len];
                ahat.data_mut()[i * k + lo..i * k + hi].copy_from_slice(cent);
            }
        }
        (ahat, assign)
    }
}

impl std::fmt::Debug for LutGemm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LutGemm")
            .field("in_dim", &self.in_dim)
            .field("out_dim", &self.out_dim)
            .field("v", &self.cfg.v)
            .field("c", &self.cfg.c)
            .field("distance", &self.cfg.distance)
            .finish()
    }
}

/// The STE quantization op recorded on the tape.
struct LutQuantizeOp {
    /// `[m·n_sub]` chosen centroid per (row, subspace).
    assignments: Vec<u32>,
    v: usize,
    c: usize,
    k: usize,
    n_sub: usize,
}

impl CustomOp for LutQuantizeOp {
    fn name(&self) -> &str {
        "lut_quantize"
    }

    fn backward(
        &self,
        grad_out: &Tensor,
        parent_values: &[&Tensor],
        _value: &Tensor,
    ) -> Vec<Option<Tensor>> {
        // parents: [x, centroids_0, .., centroids_{n_sub-1}]
        let m = parent_values[0].dims()[0];
        let mut grads: Vec<Option<Tensor>> = Vec::with_capacity(1 + self.n_sub);
        // STE: gradient flows to the activations unchanged.
        grads.push(Some(grad_out.clone()));
        for s in 0..self.n_sub {
            let mut gc = Tensor::zeros(&[self.c, self.v]);
            let lo = s * self.v;
            let hi = ((s + 1) * self.v).min(self.k);
            let len = hi - lo;
            for i in 0..m {
                let idx = self.assignments[i * self.n_sub + s] as usize;
                for j in 0..len {
                    gc.data_mut()[idx * self.v + j] += grad_out.data()[i * self.k + lo + j];
                }
            }
            grads.push(Some(gc));
        }
        grads
    }
}

impl GemmOp for LutGemm {
    fn forward_gemm(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        if !g.is_train() {
            if let Some(d) = self.deploy.borrow().as_ref() {
                debug_assert_eq!(
                    d.params_version,
                    ps.version(),
                    "stale DeployState: parameters changed since deployment \
                     (re-deploy, or let the trainer's stage transitions clear it)"
                );
                let y = if let Some(cache) = &d.decode {
                    cache.eval(&d.engine, g.value(x))
                } else {
                    match &d.stage {
                        Some(stage) => {
                            let xv = g.value(x);
                            let m = xv.dims()[0];
                            let out = stage
                                .submit_rows(xv.data())
                                .and_then(Pending::wait)
                                .expect("stage micro-batcher died while deployed");
                            Tensor::from_vec(out, &[m, self.out_dim])
                        }
                        None => lutdla_vq::lock_engine(&d.engine).run_batch(g.value(x)),
                    }
                };
                return g.input(y);
            }
        }
        let (ahat, assignments) = self.quantize(g.value(x), ps);
        let n_sub = self.centroids.len();

        // Parents: activation + every centroid table, so gradients reach all.
        let mut parents = vec![x];
        for &cid in &self.centroids {
            parents.push(g.param(ps, cid));
        }
        let op = LutQuantizeOp {
            assignments,
            v: self.cfg.v,
            c: self.cfg.c,
            k: self.in_dim,
            n_sub,
        };
        let ahat_node = g.custom(&parents, ahat, Box::new(op));

        let w = g.param(ps, self.weight);
        let yq = g.matmul(ahat_node, w);

        if g.is_train() && self.recon_enabled && self.cfg.recon_weight > 0.0 {
            // Lre = ‖SG(ÂW) − AW‖² + ‖ÂW − SG(AW)‖² (means, then weighted).
            let yf = g.matmul(x, w);
            let sg_yq = g.stop_gradient(yq);
            let sg_yf = g.stop_gradient(yf);
            let commit = g.mse_loss(sg_yq, yf);
            let codebook_term = g.mse_loss(yq, sg_yf);
            let sum = g.add(commit, codebook_term);
            let weighted = g.scale(sum, self.cfg.recon_weight);
            let mut aux = self.aux.borrow_mut();
            *aux = Some(match aux.take() {
                Some(prev) => g.add(prev, weighted),
                None => weighted,
            });
        }
        yq
    }

    fn params(&self) -> Vec<ParamId> {
        let mut p = vec![self.weight];
        p.extend_from_slice(&self.centroids);
        p
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn take_aux(&self) -> Option<NodeId> {
        self.aux.borrow_mut().take()
    }

    fn weight_param(&self) -> Option<ParamId> {
        Some(self.weight)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(cfg: LutConfig) -> (ParamSet, LutGemm, Tensor) {
        let mut rng = StdRng::seed_from_u64(90);
        let mut ps = ParamSet::new();
        let calib = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
        let w = ps.add("w", Tensor::randn(&mut rng, &[8, 4], 0.5));
        let lut = LutGemm::from_weight_kmeans(&mut ps, &mut rng, "lut", w, cfg, &calib);
        (ps, lut, calib)
    }

    #[test]
    fn forward_output_shape() {
        let (ps, lut, calib) = setup(LutConfig::default());
        let mut g = Graph::new(false);
        let x = g.input(calib.rows(0, 8));
        let y = lut.forward_gemm(&mut g, &ps, x);
        assert_eq!(g.value(y).dims(), &[8, 4]);
    }

    #[test]
    fn forward_matches_quantized_matmul() {
        let (ps, lut, calib) = setup(LutConfig::default());
        let x = calib.rows(0, 16);
        let (ahat, _) = lut.quantize(&x, &ps);
        let expect = ahat.matmul(ps.value(lut.weight()));
        let mut g = Graph::new(false);
        let xn = g.input(x);
        let y = lut.forward_gemm(&mut g, &ps, xn);
        assert!(g.value(y).allclose(&expect, 1e-5));
    }

    #[test]
    fn ste_passes_gradient_to_input() {
        let (ps, lut, calib) = setup(LutConfig {
            recon_weight: 0.0,
            ..Default::default()
        });
        let mut g = Graph::new(true);
        let xn = g.input(calib.rows(0, 4));
        let y = lut.forward_gemm(&mut g, &ps, xn);
        let s = g.square(y);
        let loss = g.sum_all(s);
        g.backward(loss);
        // STE: dL/dx = dL/dÂ = (dL/dy)·Wᵀ — nonzero in general.
        let gx = g.grad(xn).expect("input grad");
        assert!(gx.norm() > 0.0);
        assert_eq!(gx.dims(), &[4, 8]);
    }

    #[test]
    fn centroids_receive_scattered_gradient() {
        let (mut ps, lut, calib) = setup(LutConfig {
            recon_weight: 0.0,
            ..Default::default()
        });
        let mut g = Graph::new(true);
        let xn = g.input(calib.rows(0, 16));
        let y = lut.forward_gemm(&mut g, &ps, xn);
        let s = g.square(y);
        let loss = g.sum_all(s);
        g.backward(loss);
        g.apply_param_grads(&mut ps);
        let total: f32 = lut
            .centroid_params()
            .iter()
            .map(|&cid| ps.grad(cid).norm())
            .sum();
        assert!(total > 0.0, "no gradient reached the centroids");
    }

    #[test]
    fn recon_loss_emitted_in_train_mode_only() {
        let (ps, lut, calib) = setup(LutConfig::default());
        let mut g = Graph::new(true);
        let xn = g.input(calib.rows(0, 4));
        let _ = lut.forward_gemm(&mut g, &ps, xn);
        assert!(lut.take_aux().is_some());

        let mut g = Graph::new(false);
        let xn = g.input(calib.rows(0, 4));
        let _ = lut.forward_gemm(&mut g, &ps, xn);
        assert!(lut.take_aux().is_none());
    }

    #[test]
    fn recon_loss_trains_centroids_toward_activations() {
        // Minimizing only the recon loss should reduce quantization error.
        let mut rng = StdRng::seed_from_u64(91);
        let mut ps = ParamSet::new();
        let calib = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
        let w = ps.add("w", Tensor::randn(&mut rng, &[8, 4], 0.5));
        let lut = LutGemm::from_weight_random(
            &mut ps,
            &mut rng,
            "lut",
            w,
            LutConfig {
                recon_weight: 1.0,
                c: 8,
                v: 4,
                ..Default::default()
            },
        );
        ps.set_trainable(w, false);

        // The reconstruction loss acts in the W-projected output space, so
        // measure ‖ÂW − AW‖ there.
        let projected_err = |lut: &LutGemm, ps: &ParamSet| {
            let (ahat, _) = lut.quantize(&calib, ps);
            let w = ps.value(lut.weight());
            ahat.matmul(w).rel_error(&calib.matmul(w))
        };
        let initial_err = projected_err(&lut, &ps);
        let mut opt = lutdla_nn::Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..60 {
            let mut g = Graph::new(true);
            let xn = g.input(calib.clone());
            let _ = lut.forward_gemm(&mut g, &ps, xn);
            let loss = lut.take_aux().expect("recon loss");
            ps.zero_grad();
            g.backward(loss);
            g.apply_param_grads(&mut ps);
            opt.step(&mut ps);
        }
        let final_err = projected_err(&lut, &ps);
        assert!(
            final_err < initial_err * 0.8,
            "recon training did not improve quantization: {initial_err} -> {final_err}"
        );
    }

    #[test]
    fn export_round_trips_centroids() {
        let (ps, lut, calib) = setup(LutConfig::default());
        let (pq, w) = lut.export(&ps);
        assert_eq!(pq.num_subspaces(), 2);
        assert_eq!(w.dims(), &[8, 4]);
        // Quantization through the exported PQ matches the layer's own path.
        let x = calib.rows(0, 8);
        let (ahat, _) = lut.quantize(&x, &ps);
        let codes = pq.encode(&x);
        let decoded = pq.decode(&codes, 8);
        assert!(ahat.allclose(&decoded, 1e-6));
    }

    #[test]
    fn deployed_forward_uses_engine_and_matches_quantize_path() {
        let (ps, lut, calib) = setup(LutConfig::default());
        let x = calib.rows(0, 16);
        let (ahat, _) = lut.quantize(&x, &ps);
        let expect = ahat.matmul(ps.value(lut.weight()));
        let mut rt = crate::LutRuntime::new(crate::DeployConfig::fp32());
        rt.deploy_layers([&lut], &ps);
        assert!(lut.deployed_engine().is_some());
        let mut g = Graph::new(false);
        let xn = g.input(x);
        let y = lut.forward_gemm(&mut g, &ps, xn);
        lut.clear_deploy();
        assert!(lut.deployed_engine().is_none());
        assert!(g.value(y).allclose(&expect, 1e-5));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale DeployState")]
    fn stale_deploy_state_is_caught() {
        let (mut ps, lut, calib) = setup(LutConfig::default());
        let mut rt = crate::LutRuntime::new(crate::DeployConfig::fp32());
        rt.deploy_layers([&lut], &ps);

        // One training step after deployment: gradients flow, version bumps.
        let mut g = Graph::new(true);
        let xn = g.input(calib.rows(0, 4));
        let y = lut.forward_gemm(&mut g, &ps, xn);
        let s = g.square(y);
        let loss = g.sum_all(s);
        g.backward(loss);
        g.apply_param_grads(&mut ps);

        // Serving the frozen table now would use outdated parameters.
        let mut g = Graph::new(false);
        let xn = g.input(calib.rows(0, 4));
        let _ = lut.forward_gemm(&mut g, &ps, xn);
    }

    #[test]
    fn ragged_k_quantize_agrees_with_exported_encode() {
        // K = 10, v = 4 → the last subspace holds 2 real dims and 2 padded
        // slots. Random init leaves garbage in the padded slots (and backward
        // never writes them), so both the layer's own path and the exported
        // quantizer must mask them out of the distance.
        let mut rng = StdRng::seed_from_u64(93);
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::randn(&mut rng, &[10, 4], 0.5));
        let cfg = LutConfig {
            v: 4,
            c: 8,
            ..Default::default()
        };
        let lut = LutGemm::from_weight_random(&mut ps, &mut rng, "lut", w, cfg);
        let x = Tensor::rand_uniform(&mut rng, &[32, 10], -1.0, 1.0);

        let (_, assign) = lut.quantize(&x, &ps);
        let (pq, _) = lut.export(&ps);
        let codes = pq.encode(&x);
        let assign16: Vec<u16> = assign.iter().map(|&a| a as u16).collect();
        assert_eq!(assign16, codes, "layer path and exported PQ disagree");
    }

    #[test]
    fn ragged_k_assignments_ignore_centroid_tail_slots() {
        let mut rng = StdRng::seed_from_u64(94);
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::randn(&mut rng, &[10, 4], 0.5));
        let cfg = LutConfig {
            v: 4,
            c: 8,
            ..Default::default()
        };
        let calib = Tensor::rand_uniform(&mut rng, &[64, 10], -1.0, 1.0);
        let lut = LutGemm::from_weight_kmeans(&mut ps, &mut rng, "lut", w, cfg, &calib);
        let x = Tensor::rand_uniform(&mut rng, &[24, 10], -1.0, 1.0);
        let (_, before) = lut.quantize(&x, &ps);

        // Vandalise the padded tail slots of the last subspace's centroids:
        // the assignment must not move (they are outside the masked window).
        let tail_cid = *lut.centroid_params().last().expect("subspaces");
        let cents = ps.value_mut(tail_cid);
        for ci in 0..cfg.c {
            for j in 2..4 {
                cents.set(&[ci, j], 1e6 * (ci as f32 + 1.0));
            }
        }
        let (_, after) = lut.quantize(&x, &ps);
        assert_eq!(before, after, "tail slots biased the assignments");
    }

    #[test]
    fn kmeans_init_beats_random_init_error() {
        let mut rng = StdRng::seed_from_u64(92);
        let mut ps = ParamSet::new();
        let calib = Tensor::rand_uniform(&mut rng, &[128, 8], -1.0, 1.0);
        let w = ps.add("w", Tensor::randn(&mut rng, &[8, 4], 0.5));
        let cfg = LutConfig::default();
        let km = LutGemm::from_weight_kmeans(&mut ps, &mut rng, "km", w, cfg, &calib);
        let rnd = LutGemm::from_weight_random(&mut ps, &mut rng, "rnd", w, cfg);
        let (a_km, _) = km.quantize(&calib, &ps);
        let (a_rnd, _) = rnd.quantize(&calib, &ps);
        assert!(a_km.rel_error(&calib) < a_rnd.rel_error(&calib));
    }
}
