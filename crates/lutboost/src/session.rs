//! `ModelSession`: the whole-model serving front door — one `submit(input)`
//! pipelines a single request through **every** deployed layer and resolves
//! a [`Pending`] handle with the final logits.
//!
//! [`crate::LutRuntime::session`] serves one layer's engine;
//! `ModelSession` closes the loop on the paper's end-to-end story (every
//! dense unit of a model lowered onto the LUTMM fabric) by compiling a
//! model's ordered unit walk into a [`UnitPlan`] per dense unit:
//!
//! * **LUT units** resolve their engine through the runtime's LRU cache
//!   (zero re-tiling at an unchanged parameter version) and are fronted by
//!   **one [`MicroBatcher`] per stage** in drain mode: each stage submits
//!   its whole activation block as one request and is served immediately,
//!   never sleeping on a deadline. The per-stage batcher is the stage's
//!   observability point ([`ModelSession::stage_stats`]) and its policy
//!   seam: building with [`crate::SessionBuilder::policy`] installs a
//!   [`lutdla_vq::BatchPolicy::Adaptive`] controller per stage, so every
//!   stage's flush window widens under backlog and collapses when idle,
//!   independently of the other stages'.
//! * **Dense units** (stem/head layers the convert policy kept dense, bias
//!   adds, batch norm, residuals, attention, pooling) run through the
//!   model's own eval forward, so the session replays *exactly* what
//!   `eval_images`/`eval_seq` compute over a deployed model.
//!
//! Submissions coalesce at the front door too: requests queue until
//! [`lutdla_vq::BatchOptions::max_batch`] are pending (or [`ModelSession::flush`] /
//! a batch-incompatible request / session drop forces a flush), then one
//! eval-mode forward serves the whole batch. Because every per-example
//! computation is batch-grouping independent (see
//! [`ServableModel::forward_logits`]), the logits a handle resolves with
//! are **bit-identical** to any other batching of the same example —
//! including the plain `deploy` + `eval_*` path.
//!
//! A session *owns* the deployment of the model's LUT units for its
//! lifetime: construction installs batched deploy state on every converted
//! layer, and drop clears it (engines stay warm in the runtime cache). Keep
//! at most one live session per model.

use std::cell::{Cell, RefCell};

use lutdla_models::trainable::ServableModel;
use lutdla_nn::ParamSet;
use lutdla_tensor::Tensor;
use lutdla_vq::{Pending, PendingResolver, ServeError};

use crate::deploy::{DecodePlan, DecodeStageStats, UnitPlan};
use crate::lut_gemm::LutGemm;

/// The session-layer error type, folded into the serving-wide
/// [`ServeError`] (its variant names and `Display` text are unchanged, so
/// existing matches and message checks keep working).
#[deprecated(
    note = "use `ServeError`: session, gateway, and decode callers share one error surface"
)]
pub type SessionError = ServeError;

/// The whole-model serving session. See the module docs.
pub struct ModelSession<'m, M: ServableModel> {
    model: &'m M,
    ps: &'m ParamSet,
    plan: Vec<UnitPlan>,
    /// The LUT layers this session deployed (cleared on drop).
    luts: Vec<&'m LutGemm>,
    /// Front-door coalescing width, in requests.
    max_batch: usize,
    classes: usize,
    queue: RefCell<Vec<(M::Input, PendingResolver)>>,
    batches: Cell<usize>,
    rows: Cell<usize>,
}

impl<'m, M: ServableModel> ModelSession<'m, M> {
    /// Called by [`crate::SessionBuilder::build_model`] with the compiled
    /// plan (engines already resolved through the cache and installed on
    /// the layers as batched deploys).
    pub(crate) fn new(
        model: &'m M,
        ps: &'m ParamSet,
        plan: Vec<UnitPlan>,
        luts: Vec<&'m LutGemm>,
        max_batch: usize,
    ) -> Self {
        Self {
            model,
            ps,
            plan,
            luts,
            max_batch: max_batch.max(1),
            classes: model.num_classes(),
            queue: RefCell::new(Vec::new()),
            batches: Cell::new(0),
            rows: Cell::new(0),
        }
    }

    /// Submits one inference request; returns a handle that resolves with
    /// the final logits row (length [`ModelSession::num_classes`]) once a
    /// forward batch containing it has run.
    ///
    /// The request joins the open batch unless it cannot share one forward
    /// with what is queued (e.g. a different sequence length), in which
    /// case the open batch flushes first. Reaching `max_batch` queued
    /// requests flushes automatically; [`ModelSession::flush`] forces a
    /// partial batch out.
    pub fn submit(&self, input: M::Input) -> Result<Pending, ServeError> {
        self.model
            .validate_input(&input)
            .map_err(ServeError::InvalidInput)?;
        let incompatible = {
            let q = self.queue.borrow();
            q.first()
                .is_some_and(|(first, _)| !self.model.batch_compatible(first, &input))
        };
        if incompatible {
            self.flush();
        }
        let (resolver, pending) = Pending::channel();
        let full = {
            let mut q = self.queue.borrow_mut();
            q.push((input, resolver));
            q.len() >= self.max_batch
        };
        if full {
            self.flush();
        }
        Ok(pending)
    }

    /// Runs the queued requests through one eval-mode forward and resolves
    /// their handles. A no-op on an empty queue.
    pub fn flush(&self) {
        let drained: Vec<(M::Input, PendingResolver)> = self.queue.borrow_mut().drain(..).collect();
        if drained.is_empty() {
            return;
        }
        let (inputs, resolvers): (Vec<M::Input>, Vec<PendingResolver>) =
            drained.into_iter().unzip();
        let logits = self.model.forward_logits(self.ps, &inputs);
        debug_assert_eq!(logits.dims(), &[inputs.len(), self.classes]);
        self.batches.set(self.batches.get() + 1);
        self.rows.set(self.rows.get() + inputs.len());
        let n = self.classes;
        // One resolution stamp per coalesced batch: every handle in this
        // flush reports the same resolve instant in its `ServeTiming`.
        let resolved_at = std::time::Instant::now();
        for (i, resolver) in resolvers.into_iter().enumerate() {
            resolver.resolve_at(logits.data()[i * n..(i + 1) * n].to_vec(), resolved_at);
        }
    }

    /// Convenience batch entry point: submits every input, flushes, and
    /// returns the stacked `[batch, classes]` logits. Errors on an empty
    /// input set ([`ServeError::EmptyRun`]).
    pub fn run(&self, inputs: impl IntoIterator<Item = M::Input>) -> Result<Tensor, ServeError> {
        let handles: Vec<Pending> = inputs
            .into_iter()
            .map(|input| self.submit(input))
            .collect::<Result<_, _>>()?;
        if handles.is_empty() {
            return Err(ServeError::EmptyRun);
        }
        self.flush();
        let mut data = Vec::with_capacity(handles.len() * self.classes);
        let m = handles.len();
        for h in handles {
            // `flush` resolves every queued handle, so a lost one means a
            // forward unwound mid-flush: propagate instead of panicking on
            // the serving path.
            data.extend(h.wait().map_err(|_| ServeError::Lost)?);
        }
        Ok(Tensor::from_vec(data, &[m, self.classes]))
    }

    /// The compiled per-unit plan, in forward order.
    pub fn plan(&self) -> &[UnitPlan] {
        &self.plan
    }

    /// Per-stage serving counters, in forward order: `(unit name, stats)`
    /// for every LUT stage ([`UnitPlan::stage_stats`]); dense units are
    /// skipped. Under an adaptive policy each stage's `current_window`
    /// converges independently, tracking that stage's own block sizes.
    pub fn stage_stats(&self) -> Vec<(&str, lutdla_vq::StageStats)> {
        self.plan
            .iter()
            .filter_map(|p| p.stage_stats().map(|s| (p.name(), s)))
            .collect()
    }

    /// How many stages run on LUT engines (the rest take the dense path).
    pub fn lut_stages(&self) -> usize {
        self.plan.iter().filter(|p| p.is_lut()).count()
    }

    /// Final logits width.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Requests queued but not yet flushed.
    pub fn queued(&self) -> usize {
        self.queue.borrow().len()
    }

    /// Coalesced forward batches run so far.
    pub fn batches_run(&self) -> usize {
        self.batches.get()
    }

    /// Requests served so far.
    pub fn rows_served(&self) -> usize {
        self.rows.get()
    }
}

impl<M: ServableModel> Drop for ModelSession<'_, M> {
    fn drop(&mut self) {
        // Serve what is still queued, then hand the layers back to
        // training-mode forwards. The engines survive in the runtime cache,
        // so the next session at this parameter version re-tiles nothing.
        self.flush();
        for lut in &self.luts {
            lut.clear_deploy();
        }
    }
}

/// Incremental autoregressive serving session: the token-streaming
/// counterpart of [`ModelSession`], built by
/// [`crate::SessionBuilder::build_decode`].
///
/// [`DecodeSession::step`] appends new token(s) to the growing sequence
/// (via [`ServableModel::extend_input`]) and serves the extended prefix's
/// logits immediately, resolving the returned [`Pending`] with a per-step
/// timing stamp. Each LUT stage routes through a
/// [`crate::DecodeStageCache`] installed for the session's lifetime: the
/// stage's activation rows for the already-processed prefix keep their
/// packed codes from the previous step, so only the new token's rows pay
/// the similarity walk — the encode-once economics of
/// [`lutdla_vq::LutEngine::run_from_packed`] applied across steps instead
/// of across engines.
///
/// Because reuse keys on exact activation bit-images and packed codes
/// fully determine the lookup, step `N`'s logits are **bit-identical** to
/// a fresh full-sequence [`ModelSession`] eval of the same `N`-token
/// prefix — for every prefix length and every deployment numerics combo.
/// Only models with an incremental-forward contract
/// ([`ServableModel::decode_contract`], e.g. a causal transformer) can be
/// served: on a bidirectional model every step would change every row and
/// the cache could never reuse a thing.
///
/// Like [`ModelSession`], a decode session owns its model's LUT
/// deployment: construction installs decode deploy state on every
/// converted layer and drop clears it. Keep at most one live session per
/// model.
pub struct DecodeSession<'m, M: ServableModel> {
    model: &'m M,
    ps: &'m ParamSet,
    plan: Vec<DecodePlan>,
    /// The LUT layers this session deployed (cleared on drop).
    luts: Vec<&'m LutGemm>,
    classes: usize,
    prefix: RefCell<Option<M::Input>>,
    steps: Cell<usize>,
}

impl<'m, M: ServableModel> DecodeSession<'m, M> {
    /// Called by [`crate::SessionBuilder::build_decode`] with the compiled
    /// plan (engines resolved through the cache, decode deploy state
    /// installed on the layers).
    pub(crate) fn new(
        model: &'m M,
        ps: &'m ParamSet,
        plan: Vec<DecodePlan>,
        luts: Vec<&'m LutGemm>,
    ) -> Self {
        Self {
            model,
            ps,
            plan,
            luts,
            classes: model.num_classes(),
            prefix: RefCell::new(None),
            steps: Cell::new(0),
        }
    }

    /// Extends the sequence with `step` (one or more new tokens) and runs
    /// one incremental forward over the grown prefix. The returned handle
    /// is already resolved — with the prefix's logits row (length
    /// [`DecodeSession::num_classes`]) and this step's timing stamp — so
    /// `wait()` never blocks; the `Pending` form keeps decode steps
    /// composable with the rest of the serving surface
    /// ([`Pending::chain`], gateway relays, latency accounting).
    ///
    /// The first step seeds the sequence and must pass the model's input
    /// validation; later steps go through
    /// [`ServableModel::extend_input`]. A rejected step leaves the prefix
    /// unchanged.
    pub fn step(&self, step: M::Input) -> Result<Pending, ServeError> {
        let grown = match self.prefix.borrow().as_ref() {
            Some(prefix) => self
                .model
                .extend_input(prefix, &step)
                .map_err(ServeError::InvalidInput)?,
            None => {
                self.model
                    .validate_input(&step)
                    .map_err(ServeError::InvalidInput)?;
                step
            }
        };
        let logits = self
            .model
            .forward_logits(self.ps, std::slice::from_ref(&grown));
        debug_assert_eq!(logits.dims(), &[1, self.classes]);
        *self.prefix.borrow_mut() = Some(grown);
        self.steps.set(self.steps.get() + 1);
        let (resolver, pending) = Pending::channel();
        resolver.resolve_at(
            logits.data()[..self.classes].to_vec(),
            std::time::Instant::now(),
        );
        Ok(pending)
    }

    /// Steps served so far.
    pub fn steps(&self) -> usize {
        self.steps.get()
    }

    /// Positions (tokens) in the current prefix — `0` before the first
    /// step ([`ServableModel::input_positions`]).
    pub fn prefix_positions(&self) -> usize {
        self.prefix
            .borrow()
            .as_ref()
            .map_or(0, |p| self.model.input_positions(p))
    }

    /// The compiled per-unit plan, in forward order.
    pub fn plan(&self) -> &[DecodePlan] {
        &self.plan
    }

    /// How many stages run on LUT engines (the rest take the dense path).
    pub fn lut_stages(&self) -> usize {
        self.plan.iter().filter(|p| p.is_lut()).count()
    }

    /// Final logits width.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Per-stage prefix-reuse counters, in forward order: `(unit name,
    /// stats)` for every LUT stage; dense units are skipped. On a causal
    /// model, `reused_rows` should dominate from the second step on.
    pub fn decode_stats(&self) -> Vec<(&str, DecodeStageStats)> {
        self.plan
            .iter()
            .filter_map(|p| p.stage_stats().map(|s| (p.name(), s)))
            .collect()
    }
}

impl<M: ServableModel> Drop for DecodeSession<'_, M> {
    fn drop(&mut self) {
        // Hand the layers back to training-mode forwards; the engines stay
        // warm in the runtime cache.
        for lut in &self.luts {
            lut.clear_deploy();
        }
    }
}

impl<M: ServableModel> std::fmt::Debug for DecodeSession<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeSession")
            .field("units", &self.plan.len())
            .field("lut_stages", &self.lut_stages())
            .field("classes", &self.classes)
            .field("steps", &self.steps())
            .field("prefix_positions", &self.prefix_positions())
            .finish()
    }
}

impl<M: ServableModel> std::fmt::Debug for ModelSession<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSession")
            .field("units", &self.plan.len())
            .field("lut_stages", &self.lut_stages())
            .field("classes", &self.classes)
            .field("max_batch", &self.max_batch)
            .field("queued", &self.queued())
            .field("batches_run", &self.batches_run())
            .field("rows_served", &self.rows_served())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{lutify_convnet, lutify_transformer, CentroidInit, ConvertPolicy};
    use crate::deploy::{undeploy_units, DeployConfig};
    use crate::lut_gemm::LutConfig;
    use crate::runtime::LutRuntime;
    use lutdla_models::trainable::{
        distilbert_mini, gpt_mini, resnet20_mini, ConvNet, TransformerClassifier,
    };
    use lutdla_nn::{Graph, ImageModel, SeqModel};
    use lutdla_vq::{FloatPrecision, LutQuant};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every deployment-numerics combination the paper's Table IV spans.
    fn all_combos() -> Vec<DeployConfig> {
        let quants = [LutQuant::F32, LutQuant::F16, LutQuant::Int8];
        let precisions = [
            FloatPrecision::Fp32,
            FloatPrecision::Bf16,
            FloatPrecision::Fp16,
        ];
        quants
            .iter()
            .flat_map(|&lut_quant| {
                precisions.iter().map(move |&precision| DeployConfig {
                    lut_quant,
                    precision,
                })
            })
            .collect()
    }

    fn converted_convnet() -> (ParamSet, ConvNet, Tensor) {
        let mut rng = StdRng::seed_from_u64(130);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let images = Tensor::randn(&mut rng, &[6, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            images.clone(),
            &mut rng,
        );
        (ps, net, images)
    }

    fn converted_transformer() -> (ParamSet, TransformerClassifier, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(131);
        let mut ps = ParamSet::new();
        let mut net = distilbert_mini(&mut ps, 3);
        let tokens: Vec<usize> = (0..6 * 16).map(|i| (i * 5 + 3) % 64).collect();
        let _ = lutify_transformer(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            &tokens,
            6,
            16,
            &mut rng,
        );
        (ps, net, tokens)
    }

    fn converted_gpt() -> (ParamSet, TransformerClassifier, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(141);
        let mut ps = ParamSet::new();
        let mut net = gpt_mini(&mut ps, 5);
        let tokens: Vec<usize> = (0..6 * 16).map(|i| (i * 11 + 2) % 64).collect();
        let _ = lutify_transformer(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            &tokens,
            6,
            16,
            &mut rng,
        );
        (ps, net, tokens)
    }

    fn image(images: &Tensor, i: usize) -> Tensor {
        let per = 3 * 16 * 16;
        Tensor::from_vec(images.data()[i * per..(i + 1) * per].to_vec(), &[3, 16, 16])
    }

    /// Acceptance property: `ModelSession::submit` output is bit-identical
    /// to the pre-existing deploy + eval forward for **every**
    /// `LutQuant × FloatPrecision` combo, whether requests share the
    /// reference's batch grouping or arrive one by one.
    #[test]
    fn convnet_session_bit_identical_to_deployed_eval_all_combos() {
        let (ps, net, images) = converted_convnet();
        let m = images.dims()[0];
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        for cfg in all_combos() {
            // Reference: the plain deploy path + batched eval forward.
            rt.deploy_with(net.dense_units(), &ps, cfg);
            let mut g = Graph::new(false);
            let node = ImageModel::logits(&net, &mut g, &ps, images.clone());
            let reference = g.value(node).clone();
            undeploy_units(net.dense_units());
            let n = reference.dims()[1];

            // Whole-model session, same batch grouping.
            let session = rt.serve(&net, &ps).config(cfg).build_model();
            assert!(session.lut_stages() > 0, "nothing planned on engines");
            let grouped = session
                .run((0..m).map(|i| image(&images, i)))
                .expect("valid images");
            assert_eq!(
                grouped.data(),
                reference.data(),
                "{cfg:?}: grouped session diverged"
            );

            // One-by-one submits (each its own forward batch) must still be
            // bit-identical: per-example logits are grouping-independent.
            for i in [0usize, m - 1] {
                let handle = session.submit(image(&images, i)).expect("valid image");
                session.flush();
                let row = handle.wait().expect("session alive");
                assert_eq!(
                    row.as_slice(),
                    &reference.data()[i * n..(i + 1) * n],
                    "{cfg:?}: single-row submit diverged on image {i}"
                );
            }
            drop(session);
        }
    }

    /// The transformer twin of the acceptance property, across all combos.
    #[test]
    fn transformer_session_bit_identical_to_deployed_eval_all_combos() {
        let (ps, net, tokens) = converted_transformer();
        let (batch, seq_len) = (6usize, 16usize);
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        for cfg in all_combos() {
            rt.deploy_with(net.dense_units(), &ps, cfg);
            let mut g = Graph::new(false);
            let node = SeqModel::logits(&net, &mut g, &ps, &tokens, batch, seq_len);
            let reference = g.value(node).clone();
            undeploy_units(net.dense_units());
            let n = reference.dims()[1];

            let session = rt.serve(&net, &ps).config(cfg).build_model();
            assert!(session.lut_stages() > 0, "nothing planned on engines");
            let grouped = session
                .run((0..batch).map(|i| tokens[i * seq_len..(i + 1) * seq_len].to_vec()))
                .expect("valid sequences");
            assert_eq!(
                grouped.data(),
                reference.data(),
                "{cfg:?}: grouped session diverged"
            );

            let handle = session
                .submit(tokens[..seq_len].to_vec())
                .expect("valid sequence");
            session.flush();
            let row = handle.wait().expect("session alive");
            assert_eq!(
                row.as_slice(),
                &reference.data()[..n],
                "{cfg:?}: single submit diverged"
            );
        }
    }

    /// Acceptance property (ISSUE 5): a session whose stages run under an
    /// **adaptive** batch policy is bit-identical to the static-policy
    /// session (and therefore to the plain deploy + eval path) for every
    /// `LutQuant × FloatPrecision` combo — the window a stage's controller
    /// happens to be at is purely a throughput decision.
    #[test]
    fn adaptive_policy_session_bit_identical_to_static_all_combos() {
        let (ps, net, images) = converted_convnet();
        let m = images.dims()[0];
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let policy = lutdla_vq::BatchPolicy::Adaptive(lutdla_vq::AdaptiveOptions {
            min_batch: 1,
            max_batch: 4096,
            ..lutdla_vq::AdaptiveOptions::default()
        });
        for cfg in all_combos() {
            let reference = {
                let session = rt.serve(&net, &ps).config(cfg).build_model();
                session
                    .run((0..m).map(|i| image(&images, i)))
                    .expect("valid images")
            };
            let session = rt.serve(&net, &ps).config(cfg).policy(policy).build_model();
            let adaptive = session
                .run((0..m).map(|i| image(&images, i)))
                .expect("valid images");
            assert_eq!(
                adaptive.data(),
                reference.data(),
                "{cfg:?}: adaptive-policy session diverged from static"
            );
            // One-by-one submits land on different windows mid-adaptation;
            // the logits must not care.
            let n = reference.dims()[1];
            for i in [0usize, m - 1] {
                let handle = session.submit(image(&images, i)).expect("valid image");
                session.flush();
                let row = handle.wait().expect("session alive");
                assert_eq!(
                    row.as_slice(),
                    &reference.data()[i * n..(i + 1) * n],
                    "{cfg:?}: adaptive single submit diverged on image {i}"
                );
            }
        }
    }

    /// Each LUT stage's adaptive window converges **independently** to its
    /// own deterministic fixed point: repeated flushes of `B` images hand
    /// stage `s` one block of `B · r_s` rows, and the controller doubles
    /// the window while the block overflows it — so it settles at the
    /// smallest `min_batch · 2^j ≥ B · r_s` (capped), a per-stage value.
    #[test]
    fn adaptive_session_stage_windows_converge_per_stage() {
        let (ps, net, images) = converted_convnet();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        // Baseline: one flush of one image measures r_s per stage.
        let per_image: Vec<(String, usize)> = {
            let session = rt.serve(&net, &ps).build_model();
            let _ = session.run([image(&images, 0)]).expect("valid image");
            session
                .stage_stats()
                .into_iter()
                .map(|(name, s)| (name.to_string(), s.rows_served))
                .collect()
        };
        assert!(!per_image.is_empty(), "no LUT stages planned");

        let cap = 4096usize;
        let policy =
            lutdla_vq::BatchPolicy::Adaptive(lutdla_vq::AdaptiveOptions::drain_only(1, cap));
        let session = rt
            .serve(&net, &ps)
            .config(DeployConfig::fp32())
            .policy(policy)
            .build_model();
        let flushes = 16; // enough doublings to reach any stage's fixed point
        let batch = 3usize;
        for round in 0..flushes {
            let handles: Vec<Pending> = (0..batch)
                .map(|i| {
                    session
                        .submit(image(&images, (round + i) % images.dims()[0]))
                        .expect("valid image")
                })
                .collect();
            session.flush();
            for h in handles {
                h.wait().expect("session alive");
            }
        }
        for ((name, stats), (base_name, r)) in session.stage_stats().iter().zip(&per_image) {
            assert_eq!(name, base_name, "stage order diverged");
            let block = batch * r;
            let expected = std::iter::successors(Some(1usize), |w| Some(w * 2))
                .find(|&w| w >= block)
                .unwrap()
                .min(cap);
            assert_eq!(
                stats.current_window, expected,
                "stage {name}: window did not converge for {block}-row blocks"
            );
            assert_eq!(
                stats.rows_served,
                flushes * block,
                "stage {name}: row accounting broke"
            );
            assert_eq!(stats.queued_high_water, block, "stage {name}");
        }
    }

    /// Satellite (ISSUE 5): with N concurrent submitters feeding the
    /// session, every LUT stage's `rows_served` accounts for exactly the
    /// total submitted examples (`images · r_s` rows at stage `s`), and
    /// the per-stage sums stay consistent with the front door and with the
    /// LUT/dense split of the plan.
    #[test]
    fn concurrent_submitters_account_rows_per_stage() {
        let (ps, net, images) = converted_convnet();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let session = rt.serve(&net, &ps).build_model();

        // Calibration: one image's per-stage row footprint.
        let _ = session.run([image(&images, 0)]).expect("valid image");
        let per_image: Vec<usize> = session
            .stage_stats()
            .iter()
            .map(|(_, s)| s.rows_served)
            .collect();

        // N producer threads push images concurrently into a channel; the
        // session thread (below) drains them into submit/flush. The front
        // door itself serializes submits — ModelSession is deliberately
        // !Sync — so what this proves is exact per-stage row accounting
        // under an interleaved multi-producer arrival stream.
        let submitters = 3usize;
        let per_submitter = 4usize;
        let total = submitters * per_submitter;
        let mut handles = Vec::with_capacity(total);
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<Tensor>();
            for t in 0..submitters {
                let tx = tx.clone();
                let images = &images;
                s.spawn(move || {
                    for i in 0..per_submitter {
                        let idx = (t * per_submitter + i) % images.dims()[0];
                        tx.send(image(images, idx)).expect("session loop alive");
                    }
                });
            }
            drop(tx);
            for input in rx {
                handles.push(session.submit(input).expect("valid image"));
                if handles.len().is_multiple_of(5) {
                    session.flush();
                }
            }
            session.flush();
        });
        for h in handles {
            assert_eq!(h.wait().expect("alive").len(), session.num_classes());
        }

        // Front door: every request served, nothing left queued.
        assert_eq!(session.queued(), 0);
        assert_eq!(session.rows_served(), 1 + total);
        // Per stage: rows_served == images · r_s, exactly.
        let stats = session.stage_stats();
        assert_eq!(stats.len(), session.lut_stages());
        assert_eq!(
            stats.len()
                + session
                    .plan()
                    .iter()
                    .filter(|p| p.stage_stats().is_none())
                    .count(),
            session.plan().len(),
            "every unit is either a LUT stage or dense"
        );
        for ((name, s), &r) in stats.iter().zip(&per_image) {
            assert_eq!(
                s.rows_served,
                (1 + total) * r,
                "stage {name}: lost or double-counted rows"
            );
        }
        // Stage sums are consistent: totals line up across the whole plan.
        let stage_total: usize = stats.iter().map(|(_, s)| s.rows_served).sum();
        let expected_total: usize = per_image.iter().map(|r| (1 + total) * r).sum();
        assert_eq!(stage_total, expected_total);
    }

    #[test]
    fn session_handles_carry_one_resolve_stamp_per_flush() {
        let (ps, net, images) = converted_convnet();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let session = rt.serve(&net, &ps).build_model();
        let before = std::time::Instant::now();
        let h1 = session.submit(image(&images, 0)).expect("valid image");
        let h2 = session.submit(image(&images, 1)).expect("valid image");
        session.flush();
        let (r1, t1) = h1.wait_timed().expect("alive");
        let (r2, t2) = h2.wait_timed().expect("alive");
        assert_eq!(r1.len(), session.num_classes());
        assert_eq!(r2.len(), session.num_classes());
        // Both requests resolved in the same flush: one shared stamp.
        assert_eq!(t1.resolved_at, t2.resolved_at);
        assert!(t1.submitted_at >= before);
        assert!(t1.submitted_at <= t2.submitted_at, "submit order preserved");
        assert!(t2.submitted_at <= t2.resolved_at);
        // Open-loop accounting from an earlier arrival instant only grows.
        assert!(t1.latency_since(before) >= t1.latency());
        // The LUT stages accounted engine service time for the flush.
        for (name, stats) in session.stage_stats() {
            assert!(stats.service_nanos > 0, "stage {name} recorded no time");
        }
    }

    #[test]
    fn session_compiles_lut_and_dense_stages_in_walk_order() {
        let (ps, net, _) = converted_convnet();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let session = rt.serve(&net, &ps).build_model();
        let units = net.dense_units();
        assert_eq!(session.plan().len(), units.len());
        for (plan, unit) in session.plan().iter().zip(&units) {
            assert_eq!(plan.name(), unit.name, "plan order diverged from walk");
            assert_eq!(
                plan.is_lut(),
                crate::convert::as_lut(unit).is_some(),
                "{}: wrong execution route",
                unit.name
            );
        }
        // Default policy keeps stem + head dense: both routes are present.
        assert!(session.lut_stages() > 0);
        assert!(session.lut_stages() < units.len());
    }

    #[test]
    fn submissions_coalesce_until_max_batch_and_stages_serve_blocks() {
        let (ps, net, images) = converted_convnet();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let session = rt.serve(&net, &ps).build_model();
        let handles: Vec<Pending> = (0..3)
            .map(|i| session.submit(image(&images, i)).expect("valid image"))
            .collect();
        // Below max_batch (default 64): nothing has run yet.
        assert_eq!(session.queued(), 3);
        assert_eq!(session.batches_run(), 0);
        session.flush();
        assert_eq!(session.queued(), 0);
        assert_eq!(session.batches_run(), 1, "one coalesced forward expected");
        assert_eq!(session.rows_served(), 3);
        for h in handles {
            assert_eq!(h.wait().expect("alive").len(), session.num_classes());
        }
        // Every LUT stage served its activation blocks through its own
        // micro-batcher — rows flowed through the whole pipeline.
        for plan in session.plan() {
            if let UnitPlan::Lut { name, stage, .. } = plan {
                assert!(
                    stage.rows_served() > 0,
                    "stage {name} was bypassed by the pipeline"
                );
            }
        }
    }

    #[test]
    fn incompatible_sequence_lengths_split_batches_transparently() {
        let (ps, net, tokens) = converted_transformer();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let session = rt.serve(&net, &ps).build_model();
        let short = session.submit(tokens[..8].to_vec()).expect("valid");
        // A 16-token request cannot share the 8-token batch: the open batch
        // flushes first, then the new request queues.
        let long = session.submit(tokens[..16].to_vec()).expect("valid");
        assert_eq!(session.batches_run(), 1, "length change must flush");
        assert_eq!(session.queued(), 1);
        session.flush();
        assert_eq!(session.batches_run(), 2);
        assert_eq!(short.wait().expect("alive").len(), 3);
        assert_eq!(long.wait().expect("alive").len(), 3);
    }

    #[test]
    fn drop_flushes_outstanding_requests_and_undeploys() {
        let (ps, net, images) = converted_convnet();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let session = rt.serve(&net, &ps).build_model();
        let lut_stages = session.lut_stages();
        let handle = session.submit(image(&images, 0)).expect("valid image");
        // While the session lives, converted layers are deployed (batched).
        let deployed = crate::deploy::lut_layers(net.dense_units())
            .filter(|l| l.deployed_engine().is_some())
            .count();
        assert_eq!(deployed, lut_stages);
        drop(session);
        // Flush-on-drop resolved the handle …
        assert_eq!(handle.wait().expect("resolved on drop").len(), 4);
        // … and the layers are back to training-mode forwards.
        let still_deployed = crate::deploy::lut_layers(net.dense_units())
            .filter(|l| l.deployed_engine().is_some())
            .count();
        assert_eq!(still_deployed, 0, "drop must undeploy the model");
    }

    #[test]
    fn invalid_inputs_are_rejected_before_queueing() {
        let (ps, net, _) = converted_convnet();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let session = rt.serve(&net, &ps).build_model();
        let err = session
            .submit(Tensor::zeros(&[3, 8, 8]))
            .expect_err("wrong spatial size");
        assert!(matches!(err, ServeError::InvalidInput(_)));
        assert_eq!(session.queued(), 0);
        // An empty run() is an error, not a zero-row tensor (the tensor
        // crate rejects zero-sized dimensions) and not a panic.
        let err = session.run(Vec::new()).expect_err("empty input set");
        assert_eq!(err, ServeError::EmptyRun);
    }

    /// Tentpole acceptance: after N decode steps, the logits of **every**
    /// step are bit-identical to a fresh full-sequence `ModelSession` eval
    /// of the same prefix — at every prefix length, for every
    /// `LutQuant × FloatPrecision` combo. Prefix-code splicing is a pure
    /// reuse optimization; it must never change a bit.
    #[test]
    fn decode_bit_identical_to_full_sequence_eval_all_combos_all_prefixes() {
        let (ps, net, tokens) = converted_gpt();
        let steps = 8;
        for cfg in all_combos() {
            let mut rt = LutRuntime::new(cfg);
            let stepped: Vec<Vec<f32>> = {
                let decode = rt.decode_session(&net, &ps).expect("causal model");
                assert!(decode.lut_stages() > 0, "nothing planned on engines");
                (0..steps)
                    .map(|i| {
                        let h = decode.step(vec![tokens[i]]).expect("valid step");
                        h.wait().expect("step resolved")
                    })
                    .collect()
                // `decode` drops here, releasing the layers' deploy state
                // for the reference sessions below.
            };
            for (i, step_logits) in stepped.iter().enumerate() {
                let fresh = rt.serve(&net, &ps).config(cfg).build_model();
                let h = fresh.submit(tokens[..=i].to_vec()).expect("valid prefix");
                fresh.flush();
                let reference = h.wait().expect("session alive");
                assert_eq!(
                    step_logits, &reference,
                    "step {i} diverged from full-sequence eval at {cfg:?}"
                );
            }
        }
    }

    /// The economics behind the tentpole: from the second step on, every
    /// LUT stage re-encodes only the new token's rows — the prefix's rows
    /// splice in as already-packed codes ([`DecodeStageStats`]).
    #[test]
    fn decode_reuses_prefix_codes_after_the_first_step() {
        let (ps, net, tokens) = converted_gpt();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let decode = rt.decode_session(&net, &ps).expect("causal model");
        assert_eq!((decode.steps(), decode.prefix_positions()), (0, 0));

        let _ = decode.step(vec![tokens[0]]).expect("seed step");
        for (name, s) in decode.decode_stats() {
            assert_eq!(s.reused_rows, 0, "stage {name} had nothing to reuse yet");
            assert!(s.walked_rows > 0, "stage {name} never walked its rows");
        }
        let after_first: Vec<u64> = decode
            .decode_stats()
            .iter()
            .map(|(_, s)| s.walked_rows)
            .collect();

        let steps = 6;
        for &tok in &tokens[1..steps] {
            let _ = decode.step(vec![tok]).expect("valid step");
        }
        assert_eq!((decode.steps(), decode.prefix_positions()), (steps, steps));
        for ((name, s), first_walk) in decode.decode_stats().iter().zip(after_first) {
            assert!(
                s.reused_rows > 0,
                "stage {name} never reused a prefix row across {steps} steps"
            );
            // A causal stage re-walks only the appended token's rows: the
            // per-step walk cost stays flat while reuse grows with the
            // prefix, so total walked rows stay well under a full re-walk
            // of every prefix (which would be quadratic in steps).
            let full_rewalk = first_walk * (steps as u64 * (steps as u64 + 1)) / 2;
            assert!(
                s.walked_rows < full_rewalk,
                "stage {name} walked {} rows — no better than re-encoding \
                 every prefix from scratch ({full_rewalk})",
                s.walked_rows
            );
        }
    }

    /// Decode steps route through the same engine encode-memo plumbing as
    /// batched sessions: a memo-backed runtime must stay bit-identical.
    #[test]
    fn decode_with_encode_memo_stays_bit_identical() {
        let (ps, net, tokens) = converted_gpt();
        let cfg = DeployConfig::bf16_int8();
        let mut plain_rt = LutRuntime::new(cfg);
        let mut memo_rt = LutRuntime::with_options(
            cfg,
            crate::runtime::RuntimeOptions {
                memo_rows: 4096,
                ..crate::runtime::RuntimeOptions::default()
            },
        );
        let plain = plain_rt.decode_session(&net, &ps).expect("causal model");
        let steps = 5;
        let want: Vec<Vec<f32>> = (0..steps)
            .map(|i| {
                let h = plain.step(vec![tokens[i]]).expect("valid step");
                h.wait().expect("resolved")
            })
            .collect();
        drop(plain);
        let memo = memo_rt.decode_session(&net, &ps).expect("causal model");
        for (i, want) in want.iter().enumerate() {
            let h = memo.step(vec![tokens[i]]).expect("valid step");
            let got = h.wait().expect("resolved");
            assert_eq!(&got, want, "memo-backed decode diverged at step {i}");
        }
    }

    /// Front-door rejections: a bad first step, a bad later step, and an
    /// overgrown sequence all fail with [`ServeError::InvalidInput`] and
    /// leave the prefix exactly where it was.
    #[test]
    fn decode_rejects_invalid_steps_without_growing_the_prefix() {
        let (ps, net, tokens) = converted_gpt();
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        let decode = rt.decode_session(&net, &ps).expect("causal model");

        // First step must pass full input validation.
        assert!(matches!(
            decode.step(vec![999]),
            Err(ServeError::InvalidInput(_))
        ));
        assert!(matches!(
            decode.step(vec![]),
            Err(ServeError::InvalidInput(_))
        ));
        assert_eq!((decode.steps(), decode.prefix_positions()), (0, 0));

        let _ = decode.step(vec![tokens[0]]).expect("valid seed");
        assert!(matches!(
            decode.step(vec![999]),
            Err(ServeError::InvalidInput(_))
        ));
        assert_eq!(
            decode.prefix_positions(),
            1,
            "rejected step grew the prefix"
        );

        // Growing past max_seq is rejected by `extend_input`'s validation.
        for &tok in &tokens[1..16] {
            let _ = decode.step(vec![tok]).expect("still in range");
        }
        assert!(matches!(
            decode.step(vec![tokens[0]]),
            Err(ServeError::InvalidInput(_))
        ));
        assert_eq!(decode.prefix_positions(), 16);
    }
}
