//! Deployment numerics and model-level deploy/undeploy helpers: freeze a
//! converted model into lookup tables and evaluate it exactly as the IMM
//! hardware would execute it (Table IV's FP32/BF16+INT8 columns).
//!
//! Engine construction, caching, and serving live in [`crate::LutRuntime`];
//! this module provides the numeric configuration ([`DeployConfig`]), the
//! single iterator ([`lut_layers`]) every architecture's deploy path funnels
//! through, and the runtime-backed evaluation entry points.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use lutdla_nn::data::{ImageDataset, SeqDataset};
use lutdla_nn::ParamSet;
use lutdla_tensor::Tensor;
use lutdla_vq::{
    lock_engine, CodeWidth, EncodeMemo, FloatPrecision, LutEngine, LutQuant, MicroBatcher,
    PackedCodes, SharedEngine, StageStats,
};

use lutdla_models::trainable::{ConvNet, DenseUnit, TransformerClassifier};

use crate::convert::as_lut;
use crate::lut_gemm::LutGemm;
use crate::runtime::LutRuntime;

/// Numeric configuration of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployConfig {
    /// Precision of the stored LUT entries.
    pub lut_quant: LutQuant,
    /// Precision of the similarity (distance) datapath.
    pub precision: FloatPrecision,
}

impl DeployConfig {
    /// Full-precision deployment (paper's "FP32+FP32").
    pub fn fp32() -> Self {
        Self {
            lut_quant: LutQuant::F32,
            precision: FloatPrecision::Fp32,
        }
    }

    /// The paper's efficient deployment: BF16 distances + INT8 tables.
    pub fn bf16_int8() -> Self {
        Self {
            lut_quant: LutQuant::Int8,
            precision: FloatPrecision::Bf16,
        }
    }
}

/// The converted LUT layers among a model's dense units, in unit order.
///
/// Both `ConvNet::dense_units()` and
/// `TransformerClassifier::dense_units()` feed straight in, so every
/// deploy/undeploy path — any architecture — shares this one call site.
pub fn lut_layers<'a>(
    units: impl IntoIterator<Item = &'a DenseUnit>,
) -> impl Iterator<Item = &'a LutGemm> {
    units.into_iter().filter_map(as_lut)
}

/// Reverts every LUT layer among `units` to training-mode forwards. Cached
/// engines survive in whichever [`LutRuntime`] built them, so a later
/// re-deploy at an unchanged parameter version is free.
pub fn undeploy_units<'a>(units: impl IntoIterator<Item = &'a DenseUnit>) {
    for lut in lut_layers(units) {
        lut.clear_deploy();
    }
}

/// One dense unit's compiled execution route in a whole-model serving
/// session ([`crate::ModelSession`]): LUT engine or dense path. Compiled
/// once per session by [`LutRuntime::model_session`]; the session replays
/// the plan on every flush.
pub enum UnitPlan {
    /// A converted layer: its engine (resolved through the runtime's LRU
    /// cache) fronted by the session's per-stage micro-batcher.
    Lut {
        /// Unit name, for reporting.
        name: String,
        /// Direct handle to the cached engine this stage runs on — for
        /// introspection/diagnostics, and to pin the tiled tables for the
        /// session's lifetime independently of the layer's deploy state
        /// and the cache's LRU eviction.
        engine: SharedEngine,
        /// The stage's micro-batcher (zero-delay drain policy): the
        /// stage's activation block joins as a single request and is
        /// served immediately.
        stage: Arc<MicroBatcher>,
    },
    /// A unit the convert policy kept dense: served by the plain GEMM
    /// inside the model's eval forward.
    Dense {
        /// Unit name, for reporting.
        name: String,
    },
}

impl UnitPlan {
    /// Whether this unit runs on a LUT engine.
    pub fn is_lut(&self) -> bool {
        matches!(self, UnitPlan::Lut { .. })
    }

    /// The unit's name.
    pub fn name(&self) -> &str {
        match self {
            UnitPlan::Lut { name, .. } | UnitPlan::Dense { name } => name,
        }
    }

    /// Snapshot of this stage's serving counters (batches run, rows
    /// served, queued-depth high-water, current window) — the per-stage
    /// observability surface of a [`crate::ModelSession`]. `None` for
    /// units on the dense path, which have no batcher to observe.
    pub fn stage_stats(&self) -> Option<StageStats> {
        match self {
            UnitPlan::Lut { stage, .. } => Some(stage.stats()),
            UnitPlan::Dense { .. } => None,
        }
    }

    /// A second handle onto the same compiled route: the engine and stage
    /// batcher are shared (`Arc` clones), so every plan stamped from one
    /// template drains through the *same* per-stage windows. This is how
    /// [`LutRuntime::model_session_shared`](crate::LutRuntime::model_session_shared)
    /// turns a [`crate::StageBatchers`] template into a live session plan.
    pub(crate) fn share(&self) -> UnitPlan {
        match self {
            UnitPlan::Lut {
                name,
                engine,
                stage,
            } => UnitPlan::Lut {
                name: name.clone(),
                engine: Arc::clone(engine),
                stage: Arc::clone(stage),
            },
            UnitPlan::Dense { name } => UnitPlan::Dense { name: name.clone() },
        }
    }
}

impl std::fmt::Debug for UnitPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitPlan::Lut { name, stage, .. } => f
                .debug_struct("Lut")
                .field("name", name)
                .field("rows_served", &stage.rows_served())
                .field("window", &stage.current_window())
                .finish(),
            UnitPlan::Dense { name } => f.debug_struct("Dense").field("name", name).finish(),
        }
    }
}

/// Prefix-reuse counters of one [`DecodeStageCache`], cumulative over a
/// [`crate::DecodeSession`]'s lifetime. On a causal model every step after
/// the first should mostly `reuse`: only the new token's rows re-walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStageStats {
    /// Rows whose packed codes were spliced from the cached prefix — no
    /// similarity walk.
    pub reused_rows: u64,
    /// Rows that went through the similarity walk (new or changed rows).
    pub walked_rows: u64,
}

/// Per-stage prefix cache of a [`crate::DecodeSession`]: the previous
/// step's activation rows (as exact bit-images) together with their packed
/// code stream ([`PackedCodes`]). On the next step, the longest bitwise-
/// common row prefix reuses its codes verbatim — [`PackedCodes::truncate_rows`]
/// plus [`PackedCodes::append`] splice the cached prefix to a freshly
/// encoded suffix — so only new rows pay the similarity walk. Because
/// packed codes fully determine the lookup ([`LutEngine::run_from_packed`]
/// is bit-identical to `run_batch` on the same rows), reuse never changes
/// a single output bit.
pub struct DecodeStageCache {
    /// Optional cross-step encode memo ([`crate::RuntimeOptions::memo_rows`]):
    /// fresh rows that hash-match a previously walked row skip the walk too.
    memo: Option<Arc<EncodeMemo>>,
    inner: RefCell<CacheInner>,
}

#[derive(Default)]
struct CacheInner {
    /// Bit-image of the previous eval's activation rows (`rows × k`).
    rows: Vec<f32>,
    /// Row width of `rows`; `0` until the first eval.
    k: usize,
    /// The previous eval's packed code stream (same row count as `rows`).
    packed: Option<PackedCodes>,
    /// Packed-stream geometry `(n_sub, width, row_stride)`, learned from
    /// the first encode; needed to size memo lookups without walking.
    geometry: Option<(usize, CodeWidth, usize)>,
    reused_rows: u64,
    walked_rows: u64,
}

impl DecodeStageCache {
    pub(crate) fn new(memo: Option<Arc<EncodeMemo>>) -> Self {
        Self {
            memo,
            inner: RefCell::new(CacheInner::default()),
        }
    }

    /// Cumulative reuse/walk row counters.
    pub fn stats(&self) -> DecodeStageStats {
        let inner = self.inner.borrow();
        DecodeStageStats {
            reused_rows: inner.reused_rows,
            walked_rows: inner.walked_rows,
        }
    }

    /// Serves one eval-mode forward through the prefix cache; bit-identical
    /// to `run_batch(x)` on the same engine. See the type docs.
    pub(crate) fn eval(&self, engine: &SharedEngine, x: &Tensor) -> Tensor {
        let mut eng = lock_engine(engine);
        let (m, k) = (x.dims()[0], x.dims()[1]);
        let data = x.data();
        let mut inner = self.inner.borrow_mut();
        // Longest bitwise-common row prefix against the previous eval.
        let mut common = 0usize;
        if inner.k == k && k > 0 {
            let limit = (inner.rows.len() / k).min(m);
            while common < limit
                && bits_eq(
                    &inner.rows[common * k..(common + 1) * k],
                    &data[common * k..(common + 1) * k],
                )
            {
                common += 1;
            }
        }
        let mut stream = match inner.packed.take() {
            Some(mut p) if common > 0 => {
                p.truncate_rows(common);
                Some(p)
            }
            _ => {
                common = 0;
                None
            }
        };
        let fresh = m - common;
        if fresh > 0 {
            let suffix = self.encode_suffix(
                &mut eng,
                &data[common * k..m * k],
                fresh,
                k,
                &mut inner.geometry,
            );
            match stream.as_mut() {
                Some(s) => s.append(&suffix),
                None => stream = Some(suffix),
            }
        }
        inner.reused_rows += common as u64;
        inner.walked_rows += fresh as u64;
        inner.k = k;
        inner.rows.clear();
        inner.rows.extend_from_slice(&data[..m * k]);
        let y = match stream.as_ref().map(|s| eng.run_from_packed(s)) {
            Some(Ok(y)) => y,
            // Structurally unreachable — the spliced stream always holds
            // `m ≥ 1` rows of this engine's geometry — but the serving path
            // degrades to a plain (still bit-identical) batch run rather
            // than panicking.
            _ => eng.run_batch(x),
        };
        inner.packed = stream;
        y
    }

    /// Encodes `fresh` new rows, through the per-stage memo when present:
    /// memo hits paste their verified packed bytes; misses walk one row and
    /// seed the memo for later steps (and streams).
    fn encode_suffix(
        &self,
        eng: &mut LutEngine,
        rows: &[f32],
        fresh: usize,
        k: usize,
        geometry: &mut Option<(usize, CodeWidth, usize)>,
    ) -> PackedCodes {
        let Some(memo) = &self.memo else {
            return eng.encode_packed(&Tensor::from_vec(rows.to_vec(), &[fresh, k]));
        };
        let mut bytes = Vec::new();
        for r in 0..fresh {
            let row = &rows[r * k..(r + 1) * k];
            if let Some((_, _, stride)) = *geometry {
                let start = bytes.len();
                bytes.resize(start + stride, 0u8);
                if memo.lookup(row, &mut bytes[start..]) {
                    continue;
                }
                bytes.truncate(start);
            }
            let one = eng.encode_packed(&Tensor::from_vec(row.to_vec(), &[1, k]));
            memo.insert(row, one.row_bytes(0));
            *geometry = Some((one.n_sub(), one.width(), one.row_stride()));
            bytes.extend_from_slice(one.bytes());
        }
        match *geometry {
            Some((n_sub, width, _)) => PackedCodes::from_bytes(bytes, fresh, n_sub, width),
            // Unreachable: `fresh > 0`, and any first row is a memo miss
            // (lookups need the geometry this arm lacks), which sets it.
            None => eng.encode_packed(&Tensor::from_vec(rows.to_vec(), &[fresh, k])),
        }
    }
}

impl std::fmt::Debug for DecodeStageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("DecodeStageCache")
            .field("reused_rows", &s.reused_rows)
            .field("walked_rows", &s.walked_rows)
            .field("memo", &self.memo.is_some())
            .finish()
    }
}

/// Bitwise row equality — the prefix cache keys on the exact activation
/// image, so `-0.0 ≠ 0.0` and any NaN payload change invalidates reuse
/// (strictly conservative: a false negative only costs a re-walk).
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One dense unit's compiled route in a [`crate::DecodeSession`] — the
/// decode twin of [`UnitPlan`]: LUT stages route through a per-stage
/// prefix cache instead of a micro-batcher.
pub enum DecodePlan {
    /// A converted layer: its cached engine plus the step-to-step prefix
    /// cache installed on the layer for the session's lifetime.
    Lut {
        /// Unit name, for reporting.
        name: String,
        /// Direct handle to the cached engine this stage runs on.
        engine: SharedEngine,
        /// The stage's prefix cache (shared with the layer's deploy state).
        cache: Rc<DecodeStageCache>,
    },
    /// A unit the convert policy kept dense: served by the plain GEMM
    /// inside the model's eval forward.
    Dense {
        /// Unit name, for reporting.
        name: String,
    },
}

impl DecodePlan {
    /// Whether this unit runs on a LUT engine.
    pub fn is_lut(&self) -> bool {
        matches!(self, DecodePlan::Lut { .. })
    }

    /// The unit's name.
    pub fn name(&self) -> &str {
        match self {
            DecodePlan::Lut { name, .. } | DecodePlan::Dense { name } => name,
        }
    }

    /// This stage's prefix-reuse counters; `None` for dense units.
    pub fn stage_stats(&self) -> Option<DecodeStageStats> {
        match self {
            DecodePlan::Lut { cache, .. } => Some(cache.stats()),
            DecodePlan::Dense { .. } => None,
        }
    }
}

impl std::fmt::Debug for DecodePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodePlan::Lut { name, cache, .. } => f
                .debug_struct("Lut")
                .field("name", name)
                .field("cache", cache)
                .finish(),
            DecodePlan::Dense { name } => f.debug_struct("Dense").field("name", name).finish(),
        }
    }
}

/// Evaluates a converted [`ConvNet`] through the table-lookup path, using
/// (and warming) the runtime's engine cache at the given numerics.
///
/// A thin wrapper over [`crate::ModelSession`]: every test image is
/// submitted through the whole-model front door (flushed in `batch_size`
/// groups), which is bit-identical to the batched eval forward because
/// per-example logits are independent of batch grouping.
pub fn eval_images_deployed(
    rt: &mut LutRuntime,
    net: &ConvNet,
    ps: &ParamSet,
    data: &ImageDataset,
    batch_size: usize,
    cfg: DeployConfig,
) -> f32 {
    let session = rt.serve(net, ps).config(cfg).build_model();
    let mut correct = 0usize;
    let mut pending = Vec::with_capacity(batch_size.max(1));
    for i in 0..data.len() {
        let (image, label) = data.example(i);
        let handle = session.submit(image).expect("dataset example is valid");
        pending.push((handle, label));
        if pending.len() == batch_size.max(1) || i + 1 == data.len() {
            session.flush();
            correct += drain_correct(&mut pending);
        }
    }
    correct as f32 / data.len().max(1) as f32
}

/// Evaluates a converted [`TransformerClassifier`] through the table-lookup
/// path, using (and warming) the runtime's engine cache.
///
/// A thin wrapper over [`crate::ModelSession`]; see
/// [`eval_images_deployed`].
pub fn eval_seq_deployed(
    rt: &mut LutRuntime,
    net: &TransformerClassifier,
    ps: &ParamSet,
    data: &SeqDataset,
    batch_size: usize,
    cfg: DeployConfig,
) -> f32 {
    let session = rt.serve(net, ps).config(cfg).build_model();
    let mut correct = 0usize;
    let mut pending = Vec::with_capacity(batch_size.max(1));
    for i in 0..data.len() {
        let (tokens, label) = data.sequence(i);
        let handle = session
            .submit(tokens.to_vec())
            .expect("dataset sequence is valid");
        pending.push((handle, label));
        if pending.len() == batch_size.max(1) || i + 1 == data.len() {
            session.flush();
            correct += drain_correct(&mut pending);
        }
    }
    correct as f32 / data.len().max(1) as f32
}

/// Resolves a flushed group of handles and counts argmax hits.
fn drain_correct(pending: &mut Vec<(lutdla_vq::Pending, usize)>) -> usize {
    pending
        .drain(..)
        .filter(|(handle, label)| {
            let logits = handle
                .try_wait()
                .expect("session alive")
                .expect("handle was flushed");
            // First-wins tie-break, matching `Tensor::argmax_last_axis`
            // (so accuracies agree with the batched eval loops exactly).
            let mut best = 0;
            for (j, &v) in logits.iter().enumerate() {
                if v > logits[best] {
                    best = j;
                }
            }
            best == *label
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{lutify_convnet, CentroidInit, ConvertPolicy};
    use crate::lut_gemm::LutConfig;
    use lutdla_models::trainable::resnet20_mini;
    use lutdla_nn::data::{synthetic_images, ImageTaskConfig};
    use lutdla_nn::{Graph, ImageModel};
    use lutdla_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deployed_fp32_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(110);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let images = Tensor::randn(&mut rng, &[4, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            images.clone(),
            &mut rng,
        );

        // Eval forward (quantized path, no deploy) …
        let mut g = Graph::new(false);
        let node = net.logits(&mut g, &ps, images.clone());
        let base = g.value(node).clone();
        // … must equal the FP32-deployed table path.
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy(net.dense_units(), &ps);
        let mut g = Graph::new(false);
        let node = net.logits(&mut g, &ps, images.clone());
        let deployed = g.value(node).clone();
        undeploy_units(net.dense_units());
        assert!(
            deployed.allclose(&base, 1e-3),
            "rel err {}",
            deployed.rel_error(&base)
        );
    }

    #[test]
    fn bf16_int8_deployment_stays_close() {
        let (train, test) = synthetic_images(&ImageTaskConfig {
            num_classes: 4,
            n_train: 64,
            n_test: 48,
            noise: 0.25,
            ..ImageTaskConfig::cifar10_proxy()
        });
        let mut rng = StdRng::seed_from_u64(111);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let calib = train.batch(0, 32).0;
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig {
                c: 32,
                ..Default::default()
            },
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            calib,
            &mut rng,
        );
        let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
        let fp32 = eval_images_deployed(&mut rt, &net, &ps, &test, 32, DeployConfig::fp32());
        let int8 = eval_images_deployed(&mut rt, &net, &ps, &test, 32, DeployConfig::bf16_int8());
        // Paper: BF16+INT8 costs < 1% accuracy; allow a generous margin on
        // the toy task (untrained conversion → near-chance accuracy is fine,
        // but the two paths must not diverge wildly).
        assert!(
            (fp32 - int8).abs() < 0.25,
            "fp32 {fp32} vs bf16+int8 {int8}"
        );
        // One runtime served both sweeps: each numeric config was built
        // exactly once per layer.
        let stats = rt.stats();
        assert_eq!(stats.hits, 0);
        assert!(stats.misses > 0);
        // Re-running one config is now all hits.
        let _ = eval_images_deployed(&mut rt, &net, &ps, &test, 32, DeployConfig::fp32());
        assert_eq!(rt.stats().misses, stats.misses, "re-eval re-tiled tables");
        assert!(rt.stats().hits > 0);
    }
}
