//! Deployment numerics and model-level deploy/undeploy helpers: freeze a
//! converted model into lookup tables and evaluate it exactly as the IMM
//! hardware would execute it (Table IV's FP32/BF16+INT8 columns).
//!
//! Engine construction, caching, and serving live in [`crate::LutRuntime`];
//! this module provides the numeric configuration ([`DeployConfig`]), the
//! single iterator ([`lut_layers`]) every architecture's deploy path funnels
//! through, and the runtime-backed evaluation entry points.

use std::sync::Arc;

use lutdla_nn::data::{ImageDataset, SeqDataset};
use lutdla_nn::ParamSet;
use lutdla_vq::{FloatPrecision, LutQuant, MicroBatcher, SharedEngine, StageStats};

use lutdla_models::trainable::{ConvNet, DenseUnit, TransformerClassifier};

use crate::convert::as_lut;
use crate::lut_gemm::LutGemm;
use crate::runtime::LutRuntime;

/// Numeric configuration of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployConfig {
    /// Precision of the stored LUT entries.
    pub lut_quant: LutQuant,
    /// Precision of the similarity (distance) datapath.
    pub precision: FloatPrecision,
}

impl DeployConfig {
    /// Full-precision deployment (paper's "FP32+FP32").
    pub fn fp32() -> Self {
        Self {
            lut_quant: LutQuant::F32,
            precision: FloatPrecision::Fp32,
        }
    }

    /// The paper's efficient deployment: BF16 distances + INT8 tables.
    pub fn bf16_int8() -> Self {
        Self {
            lut_quant: LutQuant::Int8,
            precision: FloatPrecision::Bf16,
        }
    }
}

/// The converted LUT layers among a model's dense units, in unit order.
///
/// Both `ConvNet::dense_units()` and
/// `TransformerClassifier::dense_units()` feed straight in, so every
/// deploy/undeploy path — any architecture — shares this one call site.
pub fn lut_layers<'a>(
    units: impl IntoIterator<Item = &'a DenseUnit>,
) -> impl Iterator<Item = &'a LutGemm> {
    units.into_iter().filter_map(as_lut)
}

/// Reverts every LUT layer among `units` to training-mode forwards. Cached
/// engines survive in whichever [`LutRuntime`] built them, so a later
/// re-deploy at an unchanged parameter version is free.
pub fn undeploy_units<'a>(units: impl IntoIterator<Item = &'a DenseUnit>) {
    for lut in lut_layers(units) {
        lut.clear_deploy();
    }
}

/// One dense unit's compiled execution route in a whole-model serving
/// session ([`crate::ModelSession`]): LUT engine or dense path. Compiled
/// once per session by [`LutRuntime::model_session`]; the session replays
/// the plan on every flush.
pub enum UnitPlan {
    /// A converted layer: its engine (resolved through the runtime's LRU
    /// cache) fronted by the session's per-stage micro-batcher.
    Lut {
        /// Unit name, for reporting.
        name: String,
        /// Direct handle to the cached engine this stage runs on — for
        /// introspection/diagnostics, and to pin the tiled tables for the
        /// session's lifetime independently of the layer's deploy state
        /// and the cache's LRU eviction.
        engine: SharedEngine,
        /// The stage's micro-batcher (zero-delay drain policy): the
        /// stage's activation block joins as a single request and is
        /// served immediately.
        stage: Arc<MicroBatcher>,
    },
    /// A unit the convert policy kept dense: served by the plain GEMM
    /// inside the model's eval forward.
    Dense {
        /// Unit name, for reporting.
        name: String,
    },
}

impl UnitPlan {
    /// Whether this unit runs on a LUT engine.
    pub fn is_lut(&self) -> bool {
        matches!(self, UnitPlan::Lut { .. })
    }

    /// The unit's name.
    pub fn name(&self) -> &str {
        match self {
            UnitPlan::Lut { name, .. } | UnitPlan::Dense { name } => name,
        }
    }

    /// Snapshot of this stage's serving counters (batches run, rows
    /// served, queued-depth high-water, current window) — the per-stage
    /// observability surface of a [`crate::ModelSession`]. `None` for
    /// units on the dense path, which have no batcher to observe.
    pub fn stage_stats(&self) -> Option<StageStats> {
        match self {
            UnitPlan::Lut { stage, .. } => Some(stage.stats()),
            UnitPlan::Dense { .. } => None,
        }
    }

    /// A second handle onto the same compiled route: the engine and stage
    /// batcher are shared (`Arc` clones), so every plan stamped from one
    /// template drains through the *same* per-stage windows. This is how
    /// [`LutRuntime::model_session_shared`](crate::LutRuntime::model_session_shared)
    /// turns a [`crate::StageBatchers`] template into a live session plan.
    pub(crate) fn share(&self) -> UnitPlan {
        match self {
            UnitPlan::Lut {
                name,
                engine,
                stage,
            } => UnitPlan::Lut {
                name: name.clone(),
                engine: Arc::clone(engine),
                stage: Arc::clone(stage),
            },
            UnitPlan::Dense { name } => UnitPlan::Dense { name: name.clone() },
        }
    }
}

impl std::fmt::Debug for UnitPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitPlan::Lut { name, stage, .. } => f
                .debug_struct("Lut")
                .field("name", name)
                .field("rows_served", &stage.rows_served())
                .field("window", &stage.current_window())
                .finish(),
            UnitPlan::Dense { name } => f.debug_struct("Dense").field("name", name).finish(),
        }
    }
}

/// Evaluates a converted [`ConvNet`] through the table-lookup path, using
/// (and warming) the runtime's engine cache at the given numerics.
///
/// A thin wrapper over [`crate::ModelSession`]: every test image is
/// submitted through the whole-model front door (flushed in `batch_size`
/// groups), which is bit-identical to the batched eval forward because
/// per-example logits are independent of batch grouping.
pub fn eval_images_deployed(
    rt: &mut LutRuntime,
    net: &ConvNet,
    ps: &ParamSet,
    data: &ImageDataset,
    batch_size: usize,
    cfg: DeployConfig,
) -> f32 {
    let session = rt.model_session_with(net, ps, cfg);
    let mut correct = 0usize;
    let mut pending = Vec::with_capacity(batch_size.max(1));
    for i in 0..data.len() {
        let (image, label) = data.example(i);
        let handle = session.submit(image).expect("dataset example is valid");
        pending.push((handle, label));
        if pending.len() == batch_size.max(1) || i + 1 == data.len() {
            session.flush();
            correct += drain_correct(&mut pending);
        }
    }
    correct as f32 / data.len().max(1) as f32
}

/// Evaluates a converted [`TransformerClassifier`] through the table-lookup
/// path, using (and warming) the runtime's engine cache.
///
/// A thin wrapper over [`crate::ModelSession`]; see
/// [`eval_images_deployed`].
pub fn eval_seq_deployed(
    rt: &mut LutRuntime,
    net: &TransformerClassifier,
    ps: &ParamSet,
    data: &SeqDataset,
    batch_size: usize,
    cfg: DeployConfig,
) -> f32 {
    let session = rt.model_session_with(net, ps, cfg);
    let mut correct = 0usize;
    let mut pending = Vec::with_capacity(batch_size.max(1));
    for i in 0..data.len() {
        let (tokens, label) = data.sequence(i);
        let handle = session
            .submit(tokens.to_vec())
            .expect("dataset sequence is valid");
        pending.push((handle, label));
        if pending.len() == batch_size.max(1) || i + 1 == data.len() {
            session.flush();
            correct += drain_correct(&mut pending);
        }
    }
    correct as f32 / data.len().max(1) as f32
}

/// Resolves a flushed group of handles and counts argmax hits.
fn drain_correct(pending: &mut Vec<(lutdla_vq::Pending, usize)>) -> usize {
    pending
        .drain(..)
        .filter(|(handle, label)| {
            let logits = handle
                .try_wait()
                .expect("session alive")
                .expect("handle was flushed");
            // First-wins tie-break, matching `Tensor::argmax_last_axis`
            // (so accuracies agree with the batched eval loops exactly).
            let mut best = 0;
            for (j, &v) in logits.iter().enumerate() {
                if v > logits[best] {
                    best = j;
                }
            }
            best == *label
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{lutify_convnet, CentroidInit, ConvertPolicy};
    use crate::lut_gemm::LutConfig;
    use lutdla_models::trainable::resnet20_mini;
    use lutdla_nn::data::{synthetic_images, ImageTaskConfig};
    use lutdla_nn::{Graph, ImageModel};
    use lutdla_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deployed_fp32_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(110);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let images = Tensor::randn(&mut rng, &[4, 3, 16, 16], 1.0);
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig::default(),
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            images.clone(),
            &mut rng,
        );

        // Eval forward (quantized path, no deploy) …
        let mut g = Graph::new(false);
        let node = net.logits(&mut g, &ps, images.clone());
        let base = g.value(node).clone();
        // … must equal the FP32-deployed table path.
        let mut rt = LutRuntime::new(DeployConfig::fp32());
        rt.deploy(net.dense_units(), &ps);
        let mut g = Graph::new(false);
        let node = net.logits(&mut g, &ps, images.clone());
        let deployed = g.value(node).clone();
        undeploy_units(net.dense_units());
        assert!(
            deployed.allclose(&base, 1e-3),
            "rel err {}",
            deployed.rel_error(&base)
        );
    }

    #[test]
    fn bf16_int8_deployment_stays_close() {
        let (train, test) = synthetic_images(&ImageTaskConfig {
            num_classes: 4,
            n_train: 64,
            n_test: 48,
            noise: 0.25,
            ..ImageTaskConfig::cifar10_proxy()
        });
        let mut rng = StdRng::seed_from_u64(111);
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        let calib = train.batch(0, 32).0;
        let _ = lutify_convnet(
            &mut net,
            &mut ps,
            LutConfig {
                c: 32,
                ..Default::default()
            },
            CentroidInit::Kmeans,
            ConvertPolicy::default(),
            calib,
            &mut rng,
        );
        let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
        let fp32 = eval_images_deployed(&mut rt, &net, &ps, &test, 32, DeployConfig::fp32());
        let int8 = eval_images_deployed(&mut rt, &net, &ps, &test, 32, DeployConfig::bf16_int8());
        // Paper: BF16+INT8 costs < 1% accuracy; allow a generous margin on
        // the toy task (untrained conversion → near-chance accuracy is fine,
        // but the two paths must not diverge wildly).
        assert!(
            (fp32 - int8).abs() < 0.25,
            "fp32 {fp32} vs bf16+int8 {int8}"
        );
        // One runtime served both sweeps: each numeric config was built
        // exactly once per layer.
        let stats = rt.stats();
        assert_eq!(stats.hits, 0);
        assert!(stats.misses > 0);
        // Re-running one config is now all hits.
        let _ = eval_images_deployed(&mut rt, &net, &ps, &test, 32, DeployConfig::fp32());
        assert_eq!(rt.stats().misses, stats.misses, "re-eval re-tiled tables");
        assert!(rt.stats().hits > 0);
    }
}
