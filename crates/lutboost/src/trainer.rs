//! The LUTBoost multistage training pipeline (paper §V, Fig. 6).
//!
//! Stage ➀ — operator replacement with k-means-initialised centroids
//! (see [`crate::convert`]); Stage ➁ — *centroid calibration*: every
//! parameter except the centroids is frozen; Stage ➂ — joint training of
//! centroids and weights. The single-stage and from-scratch baselines the
//! paper compares against (Fig. 7, Fig. 12, Table II) are provided by the
//! same engine under different [`Strategy`] values.

use lutdla_nn::data::{ImageDataset, SeqDataset};
use lutdla_nn::{
    eval_images, eval_seq, train_epoch_images, train_epoch_seq, Optimizer, ParamSet, Sgd,
};
use lutdla_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lutdla_models::trainable::{ConvNet, TransformerClassifier};

use crate::convert::{lutify_convnet, lutify_transformer, CentroidInit, ConvertPolicy, LutHandles};
use crate::deploy::undeploy_units;
use crate::lut_gemm::LutConfig;

/// The conversion strategy being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// LUTBoost: k-means init → centroid calibration → joint training.
    Multistage,
    /// Prior work's conversion: random centroids, joint training only.
    SingleStage,
    /// PECAN/PQA-style: random weights *and* centroids, trained jointly
    /// from scratch (no pre-trained model). The engine reinitialises the
    /// dense weights before training when this strategy is selected.
    FromScratch,
}

/// Epoch/learning-rate schedule for conversion training.
#[derive(Debug, Clone, Copy)]
pub struct TrainSchedule {
    /// Stage-➁ epochs (centroid-only). Ignored for single-stage baselines,
    /// whose budget is folded into joint epochs so totals match.
    pub centroid_epochs: usize,
    /// Stage-➂ epochs (joint).
    pub joint_epochs: usize,
    /// Stage-➁ learning rate (paper: 1e-3).
    pub lr_centroid: f32,
    /// Stage-➂ learning rate (paper: 5e-4 / 5e-5).
    pub lr_joint: f32,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for TrainSchedule {
    fn default() -> Self {
        Self {
            centroid_epochs: 4,
            joint_epochs: 8,
            lr_centroid: 5e-2,
            lr_joint: 1e-2,
            batch_size: 32,
        }
    }
}

/// Everything the benches need from one conversion run.
#[derive(Debug, Clone)]
pub struct ConversionOutcome {
    /// Mean loss of every training epoch, across stages, in order.
    pub epoch_losses: Vec<f32>,
    /// Index into `epoch_losses` where the joint stage began.
    pub joint_start: usize,
    /// Test accuracy after conversion training.
    pub test_accuracy: f32,
    /// Handles to the created LUT state.
    pub handles: LutHandles,
}

fn freeze_all_but_centroids(ps: &mut ParamSet, handles: &LutHandles) {
    ps.set_all_trainable(false);
    for &cid in &handles.centroid_params {
        ps.set_trainable(cid, true);
    }
}

/// Converts and trains an image model according to `strategy`.
///
/// `net` must already be trained (except for [`Strategy::FromScratch`],
/// where its weights are reinitialised via fresh random values).
// The public LUTBoost recipe knobs are deliberately positional, mirroring
// the paper's training recipe and the seq twin below.
#[allow(clippy::too_many_arguments)]
pub fn convert_and_train_images(
    net: &mut ConvNet,
    ps: &mut ParamSet,
    strategy: Strategy,
    lut_cfg: LutConfig,
    policy: ConvertPolicy,
    schedule: &TrainSchedule,
    train: &ImageDataset,
    test: &ImageDataset,
    seed: u64,
) -> ConversionOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    if strategy == Strategy::FromScratch {
        reinit_weights(ps, &mut rng);
    }
    let calib = train.batch(0, schedule.batch_size.min(train.len())).0;
    let init = match strategy {
        Strategy::Multistage => CentroidInit::Kmeans,
        Strategy::SingleStage | Strategy::FromScratch => CentroidInit::Random,
    };
    let handles = lutify_convnet(net, ps, lut_cfg, init, policy, calib, &mut rng);
    // Every stage transition invalidates frozen deploy tables: training is
    // about to mutate the parameters they were built from.
    undeploy_units(net.dense_units());

    let mut epoch_losses = Vec::new();
    let mut joint_start = 0;
    if strategy == Strategy::Multistage {
        freeze_all_but_centroids(ps, &handles);
        let mut opt = Optimizer::Sgd(Sgd::new(schedule.lr_centroid, 0.9, 0.0));
        for _ in 0..schedule.centroid_epochs {
            let stats = train_epoch_images(net, ps, &mut opt, train, schedule.batch_size);
            epoch_losses.push(stats.loss);
        }
        ps.set_all_trainable(true);
        joint_start = epoch_losses.len();
        undeploy_units(net.dense_units());
    }
    // Joint stage: single-stage variants get the full epoch budget here.
    let joint_epochs = match strategy {
        Strategy::Multistage => schedule.joint_epochs,
        _ => schedule.centroid_epochs + schedule.joint_epochs,
    };
    let mut opt = Optimizer::Sgd(Sgd::new(schedule.lr_joint, 0.9, 1e-4));
    for _ in 0..joint_epochs {
        let stats = train_epoch_images(net, ps, &mut opt, train, schedule.batch_size);
        epoch_losses.push(stats.loss);
    }
    undeploy_units(net.dense_units());

    let test_accuracy = eval_images(net, ps, test, schedule.batch_size);
    ConversionOutcome {
        epoch_losses,
        joint_start,
        test_accuracy,
        handles,
    }
}

/// Converts and trains a transformer classifier according to `strategy`.
// Positional for symmetry with convert_and_train_images above.
#[allow(clippy::too_many_arguments)]
pub fn convert_and_train_seq(
    net: &mut TransformerClassifier,
    ps: &mut ParamSet,
    strategy: Strategy,
    lut_cfg: LutConfig,
    policy: ConvertPolicy,
    schedule: &TrainSchedule,
    train: &SeqDataset,
    test: &SeqDataset,
    seed: u64,
) -> ConversionOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    if strategy == Strategy::FromScratch {
        reinit_weights(ps, &mut rng);
    }
    let bs = schedule.batch_size.min(train.len());
    let (calib_tokens, _) = train.batch(0, bs);
    let init = match strategy {
        Strategy::Multistage => CentroidInit::Kmeans,
        Strategy::SingleStage | Strategy::FromScratch => CentroidInit::Random,
    };
    let handles = lutify_transformer(
        net,
        ps,
        lut_cfg,
        init,
        policy,
        &calib_tokens,
        bs,
        train.seq_len,
        &mut rng,
    );
    // See convert_and_train_images: stage transitions invalidate deploy state.
    undeploy_units(net.dense_units());

    let mut epoch_losses = Vec::new();
    let mut joint_start = 0;
    if strategy == Strategy::Multistage {
        freeze_all_but_centroids(ps, &handles);
        let mut opt = Optimizer::Sgd(Sgd::new(schedule.lr_centroid, 0.9, 0.0));
        for _ in 0..schedule.centroid_epochs {
            let stats = train_epoch_seq(net, ps, &mut opt, train, schedule.batch_size);
            epoch_losses.push(stats.loss);
        }
        ps.set_all_trainable(true);
        joint_start = epoch_losses.len();
        undeploy_units(net.dense_units());
    }
    let joint_epochs = match strategy {
        Strategy::Multistage => schedule.joint_epochs,
        _ => schedule.centroid_epochs + schedule.joint_epochs,
    };
    let mut opt = Optimizer::Sgd(Sgd::new(schedule.lr_joint, 0.9, 0.0));
    for _ in 0..joint_epochs {
        let stats = train_epoch_seq(net, ps, &mut opt, train, schedule.batch_size);
        epoch_losses.push(stats.loss);
    }
    undeploy_units(net.dense_units());

    let test_accuracy = eval_seq(net, ps, test, schedule.batch_size);
    ConversionOutcome {
        epoch_losses,
        joint_start,
        test_accuracy,
        handles,
    }
}

/// Re-randomises every parameter value (used by the from-scratch baseline).
fn reinit_weights(ps: &mut ParamSet, rng: &mut StdRng) {
    for (_, p) in ps.iter_mut() {
        let dims = p.value.dims().to_vec();
        let fan_in = dims[0].max(1);
        p.value = Tensor::kaiming(rng, &dims, fan_in);
    }
}

/// Rebuilds a [`ConvNet`] with identical parameter ids and copies the
/// trained values from `trained`.
///
/// Parameter registration order is deterministic given the config, so a
/// fresh `ParamSet` receives the same ids. Batch-norm running statistics are
/// *not* transferred; conversion training re-estimates them (its forward
/// passes run in training mode).
pub fn fresh_pretrained_convnet(
    cfg: lutdla_models::trainable::ConvNetConfig,
    trained: &ParamSet,
) -> (ConvNet, ParamSet) {
    let mut ps = ParamSet::new();
    let net = ConvNet::new(&mut ps, cfg);
    copy_values(trained, &mut ps);
    (net, ps)
}

/// Transformer counterpart of [`fresh_pretrained_convnet`].
pub fn fresh_pretrained_transformer(
    cfg: lutdla_models::trainable::TransformerConfig,
    trained: &ParamSet,
) -> (TransformerClassifier, ParamSet) {
    let mut ps = ParamSet::new();
    let net = TransformerClassifier::new(&mut ps, cfg);
    copy_values(trained, &mut ps);
    (net, ps)
}

fn copy_values(src: &ParamSet, dst: &mut ParamSet) {
    assert!(
        dst.len() <= src.len(),
        "source ParamSet is missing parameters"
    );
    let ids: Vec<_> = dst.iter().map(|(id, _)| id).collect();
    for id in ids {
        let v = src.value(id).clone();
        assert_eq!(
            v.dims(),
            dst.value(id).dims(),
            "parameter shape mismatch for {}",
            dst.name(id)
        );
        *dst.value_mut(id) = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lutdla_models::trainable::{resnet20_mini, ConvNetConfig};
    use lutdla_nn::data::{synthetic_images, ImageTaskConfig};

    fn small_task() -> (ImageDataset, ImageDataset) {
        synthetic_images(&ImageTaskConfig {
            num_classes: 4,
            n_train: 96,
            n_test: 48,
            noise: 0.25,
            ..ImageTaskConfig::cifar10_proxy()
        })
    }

    fn pretrain(net: &ConvNet, ps: &mut ParamSet, train: &ImageDataset) {
        let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4));
        for _ in 0..5 {
            train_epoch_images(net, ps, &mut opt, train, 32);
        }
    }

    #[test]
    fn multistage_pipeline_runs_and_keeps_accuracy() {
        let (train, test) = small_task();
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        pretrain(&net, &mut ps, &train);
        let baseline_acc = eval_images(&net, &ps, &test, 32);

        let schedule = TrainSchedule {
            centroid_epochs: 2,
            joint_epochs: 3,
            ..Default::default()
        };
        let outcome = convert_and_train_images(
            &mut net,
            &mut ps,
            Strategy::Multistage,
            LutConfig {
                c: 16,
                v: 4,
                ..Default::default()
            },
            ConvertPolicy::default(),
            &schedule,
            &train,
            &test,
            7,
        );
        assert_eq!(outcome.epoch_losses.len(), 5);
        assert_eq!(outcome.joint_start, 2);
        assert!(outcome.epoch_losses.iter().all(|l| l.is_finite()));
        // The LUT model should stay within striking distance of the baseline.
        assert!(
            outcome.test_accuracy > baseline_acc * 0.6,
            "LUT acc {} vs baseline {baseline_acc}",
            outcome.test_accuracy
        );
    }

    #[test]
    fn fresh_pretrained_copies_values() {
        let (train, _) = small_task();
        let mut ps = ParamSet::new();
        let net = resnet20_mini(&mut ps, 4);
        pretrain(&net, &mut ps, &train);

        let cfg = ConvNetConfig {
            in_channels: 3,
            image_size: 16,
            width: 8,
            blocks_per_stage: 1,
            num_classes: 4,
            seed: 101,
        };
        let (net2, ps2) = fresh_pretrained_convnet(cfg, &ps);
        // Same dense-unit structure, identical weight values.
        let u1 = net.dense_units();
        let u2 = net2.dense_units();
        assert_eq!(u1.len(), u2.len());
        for (a, b) in u1.iter().zip(&u2) {
            let wa = a.gemm.weight_param().expect("plain");
            let wb = b.gemm.weight_param().expect("plain");
            assert!(ps.value(wa).allclose(ps2.value(wb), 0.0));
        }
    }

    #[test]
    fn single_stage_uses_full_budget_jointly() {
        let (train, test) = small_task();
        let mut ps = ParamSet::new();
        let mut net = resnet20_mini(&mut ps, 4);
        pretrain(&net, &mut ps, &train);
        let schedule = TrainSchedule {
            centroid_epochs: 2,
            joint_epochs: 2,
            ..Default::default()
        };
        let outcome = convert_and_train_images(
            &mut net,
            &mut ps,
            Strategy::SingleStage,
            LutConfig::default(),
            ConvertPolicy::default(),
            &schedule,
            &train,
            &test,
            8,
        );
        assert_eq!(outcome.epoch_losses.len(), 4);
        assert_eq!(outcome.joint_start, 0);
    }
}
