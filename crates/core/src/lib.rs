//! LUT-DLA: a Look-Up Table deep learning accelerator framework
//! (reproduction of the HPCA 2025 paper).
//!
//! This crate is the user-facing facade over the workspace:
//!
//! * **Algorithm stack** — re-exports `lutdla-vq` (product quantization,
//!   LUT construction, approximate GEMM) and `lutdla-lutboost` (the
//!   multistage model converter).
//! * **Hardware stack** — re-exports `lutdla-hwmodel` (area/power models),
//!   `lutdla-sim` (the cycle-accurate CCM/IMM simulator), and
//!   `lutdla-baselines` (NVDLA/Gemmini/PQA comparators).
//! * **Co-design** — re-exports `lutdla-dse` (Algorithm 2 search, the
//!   Table VII design points) and provides end-to-end glue:
//!   [`simulate_workload`], [`end_to_end`].
//!
//! # Quickstart
//!
//! ```
//! use lutdla_core::prelude::*;
//!
//! // Approximate a GEMM with lookup tables…
//! use rand::{rngs::StdRng, SeedableRng};
//! let mut rng = StdRng::seed_from_u64(0);
//! let a = Tensor::rand_uniform(&mut rng, &[64, 32], -1.0, 1.0);
//! let b = Tensor::rand_uniform(&mut rng, &[32, 16], -1.0, 1.0);
//! let pq = ProductQuantizer::fit(&a, 4, 16, Distance::L1, &mut rng);
//! let lut = LutTable::build(&pq, &b, LutQuant::Int8);
//! let approx = approx_matmul(&a, &pq, &lut);
//!
//! // …and estimate how fast Design 1 executes it.
//! let report = simulate_gemm(&design1().sim_config(), &Gemm::new(64, 32, 16));
//! assert!(report.cycles > 0 && approx.dims() == [64, 16]);
//! ```

mod framework;
mod table;

pub use framework::{
    distance_to_metric, end_to_end, metric_to_distance, simulate_workload, workload_gemms, EndToEnd,
};
pub use table::{fnum, TextTable};

/// Convenient single-import surface for examples and benches.
pub mod prelude {
    pub use crate::framework::{
        distance_to_metric, end_to_end, metric_to_distance, simulate_workload, workload_gemms,
    };
    pub use crate::table::{fnum, TextTable};
    pub use lutdla_baselines::{
        nvdla_gemm, nvdla_model, pqa_onchip_bytes, simulate_pqa, systolic_gemm, systolic_model,
        table8_specs, NvdlaConfig, SystolicConfig,
    };
    pub use lutdla_dse::{
        all_designs, design1, design2, design3, search, Constraints, SearchSpace, SurrogateAccuracy,
    };
    pub use lutdla_hwmodel::{
        design_cost, DesignCost, LutDlaHwConfig, Metric, NumFormat, TechNode,
    };
    pub use lutdla_lutboost::{
        convert_and_train_images, convert_and_train_seq, eval_images_deployed, eval_seq_deployed,
        lut_layers, lutify_convnet, lutify_transformer, undeploy_units, CentroidInit,
        ConvertPolicy, DecodeSession, DeployConfig, LutConfig, LutRuntime, ModelSession,
        RuntimeOptions, ServeError, SessionBuilder, Strategy, TrainSchedule, UnitPlan,
    };
    pub use lutdla_models::trainable::ServableModel;
    pub use lutdla_models::{zoo, GemmDims, LayerShape, Workload};
    pub use lutdla_nn::{Graph, ParamSet};
    pub use lutdla_sim::{
        analytic_cycles, simulate_gemm, Dataflow, DataflowParams, Gemm, SimConfig, SimReport,
    };
    pub use lutdla_tensor::Tensor;
    pub use lutdla_vq::{
        approx_matmul, AdaptiveOptions, BatchOptions, BatchPolicy, Distance, LutQuant, LutTable,
        ProductQuantizer, ServeTiming, StageStats,
    };
}
