//! Plain-text table rendering shared by every bench binary, so the
//! regenerated tables/figures print in one consistent format alongside the
//! paper's reference values.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with engineering-style precision appropriate for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        // All data lines align on the same column start.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1'), Some(col));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.5), "1234");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(0.0001234), "1.23e-4");
    }
}
