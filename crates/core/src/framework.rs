//! The framework facade: glue between the algorithm stack (vq/lutboost),
//! the workload zoo, the simulator, and the baselines.

use lutdla_baselines::{nvdla_model, systolic_model, NvdlaConfig, PerfEstimate, SystolicConfig};
use lutdla_hwmodel::Metric;
use lutdla_models::Workload;
use lutdla_sim::{simulate_gemm, Gemm, SimConfig, SimReport};
use lutdla_vq::Distance;

/// Converts the algorithmic distance enum to the hardware metric enum.
pub fn distance_to_metric(d: Distance) -> Metric {
    match d {
        Distance::L2 => Metric::L2,
        Distance::L1 => Metric::L1,
        Distance::Chebyshev => Metric::Chebyshev,
    }
}

/// Converts the hardware metric enum to the algorithmic distance enum.
pub fn metric_to_distance(m: Metric) -> Distance {
    match m {
        Metric::L2 => Distance::L2,
        Metric::L1 => Distance::L1,
        Metric::Chebyshev => Distance::Chebyshev,
    }
}

/// Converts a workload layer list into simulator GEMMs at a batch size.
pub fn workload_gemms(w: &Workload, batch: usize) -> Vec<Gemm> {
    w.gemms(batch)
        .into_iter()
        .map(|d| Gemm::new(d.m, d.k, d.n))
        .collect()
}

/// Simulates every GEMM of a workload on a LUT-DLA instance and merges the
/// per-layer reports.
pub fn simulate_workload(cfg: &SimConfig, w: &Workload, batch: usize) -> SimReport {
    let reports: Vec<SimReport> = workload_gemms(w, batch)
        .iter()
        .map(|g| simulate_gemm(cfg, g))
        .collect();
    SimReport::merge(&reports)
}

/// End-to-end comparison of one workload across LUT-DLA and the baselines
/// (the Fig. 13 data generator).
#[derive(Debug, Clone)]
pub struct EndToEnd {
    /// Workload name.
    pub workload: String,
    /// (design name, report) for each LUT-DLA design.
    pub lutdla: Vec<(String, SimReport)>,
    /// NVDLA-Small estimate.
    pub nvdla_small: PerfEstimate,
    /// NVDLA-Large estimate.
    pub nvdla_large: PerfEstimate,
    /// Gemmini estimate.
    pub gemmini: PerfEstimate,
}

/// Runs the full Fig. 13 comparison for one workload.
pub fn end_to_end(w: &Workload, batch: usize, designs: &[(String, SimConfig)]) -> EndToEnd {
    let gemms = workload_gemms(w, batch);
    EndToEnd {
        workload: w.name.clone(),
        lutdla: designs
            .iter()
            .map(|(name, cfg)| (name.clone(), simulate_workload(cfg, w, batch)))
            .collect(),
        nvdla_small: nvdla_model(&NvdlaConfig::small(), &gemms),
        nvdla_large: nvdla_model(&NvdlaConfig::large(), &gemms),
        gemmini: systolic_model(&SystolicConfig::gemmini(), &gemms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lutdla_dse::design1;
    use lutdla_models::zoo;

    #[test]
    fn distance_metric_round_trip() {
        for d in Distance::ALL {
            assert_eq!(metric_to_distance(distance_to_metric(d)), d);
        }
    }

    #[test]
    fn workload_simulation_aggregates_layers() {
        let w = zoo::lenet();
        let cfg = design1().sim_config();
        let report = simulate_workload(&cfg, &w, 1);
        assert_eq!(report.effective_ops, w.total_ops(1));
        assert!(report.cycles > 0);
    }

    #[test]
    fn end_to_end_contains_all_baselines() {
        let w = zoo::lenet();
        let designs = vec![("D1".to_string(), design1().sim_config())];
        let e = end_to_end(&w, 1, &designs);
        assert_eq!(e.lutdla.len(), 1);
        assert!(e.nvdla_small.time_s > 0.0);
        assert!(e.gemmini.time_s > 0.0);
    }
}
